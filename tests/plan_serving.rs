//! Serving-runtime integration of multi-operator plans (`triton-exec` +
//! `triton-plan`): peak-footprint (not sum) admission, the plan rungs of
//! the degradation ladder, phase-rollup reconciliation, and scheduler
//! determinism.

use triton_core::{phase_key, SkewPolicy};
use triton_datagen::{Relation, TpchSpec};
use triton_exec::{
    downgrade_operator, to_chrome_json, validate_chrome, JoinQuery, Operator, Scheduler,
    SchedulerConfig,
};
use triton_hw::units::Ns;
use triton_hw::HwConfig;
use triton_plan::{reference_plan, tpch_query, EmitMap, Plan, PlanNode, PlanQuery};

const K: u64 = 512;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// A deep chain of joins against one shared build side: every join node
/// carries the full per-operator pipeline floor, so the *sum* of
/// operator footprints exceeds the scaled GPU while the *peak* along the
/// one-node-at-a-time schedule stays far below it.
fn chain_query(joins: usize) -> PlanQuery {
    let n_r = 256u64;
    let n_s = 2048u64;
    let r = Relation::from_columns((1..=n_r).collect(), (0..n_r).map(|i| i * 31 + 7).collect());
    let s = Relation::from_columns(
        (0..n_s).map(|i| i % n_r + 1).collect(),
        (0..n_s).map(|i| i * 17 + 3).collect(),
    );
    let mut nodes = vec![PlanNode::Scan { input: 0 }, PlanNode::Scan { input: 1 }];
    for j in 0..joins {
        nodes.push(PlanNode::Join {
            build: 0,
            probe: 1 + j,
            emit: EmitMap::KeepKey,
        });
    }
    nodes.push(PlanNode::Agg { child: 1 + joins });
    PlanQuery::new(Plan { nodes }, vec![r, s]).unwrap()
}

#[test]
fn admission_reserves_peak_not_sum() {
    let hw = hw();
    let cap = hw.gpu.mem_capacity.0;
    let q = chain_query(8);
    let expect = reference_plan(q.plan(), q.inputs());
    let fp = q.footprint(&hw, cap);
    assert!(
        fp.sum > cap,
        "sum of operator footprints must exceed the GPU: {} <= {cap}",
        fp.sum
    );
    assert!(
        q.min_reserve(&hw).0 < cap / 2,
        "peak reservation must fit comfortably: {} vs {cap}",
        q.min_reserve(&hw)
    );

    // Sum-based admission would shed this plan as over-capacity; peak
    // admission runs it to completion with an exact answer.
    let tuples = q.input_tuples();
    let res = Scheduler::new(hw, SchedulerConfig::default()).run(vec![JoinQuery::plan(
        "chain",
        q,
        Ns::ZERO,
    )]);
    assert_eq!(res.metrics.completed, 1, "{:?}", res.outcomes);
    assert_eq!(
        res.metrics.tuples, tuples,
        "plans count base-relation tuples"
    );
    let c = res.outcomes[0].completed().expect("completed");
    assert_eq!(c.operator, "plan");
    assert!(c.reserved.0 > 0 && c.reserved.0 <= cap);
    assert_eq!(c.report.result.matches, expect.groups);
    assert_eq!(c.report.result.checksum, expect.sum_digest);
    assert!(res.metrics.peak_gpu_reserved <= res.metrics.gpu_capacity);
}

/// A grant revision mid-plan means re-running placement under the new
/// budget: at full capacity the chain pipelines intermediate edges
/// GPU-resident, under a shrunk grant the same plan pins strictly fewer
/// edges (spilling the rest to host) — and the answer is byte-identical
/// either way.
#[test]
fn shrunk_grant_replaces_intermediates_exactly() {
    use triton_hw::units::Bytes;
    let hw = hw();
    let cap = hw.gpu.mem_capacity.0;
    let q = chain_query(6);
    let expect = reference_plan(q.plan(), q.inputs());

    let full = q.footprint(&hw, cap);
    // A revision below the pipelined peak: just the largest operator
    // floor, i.e. room to run every node but not to pin every edge.
    let shrunk_budget = full.floors.iter().copied().max().unwrap_or(0);
    assert!(shrunk_budget < full.peak, "the revision must actually bite");
    let shrunk = q.footprint(&hw, shrunk_budget);
    let pinned = |fp: &triton_plan::Footprint| fp.resident.iter().filter(|r| **r).count();
    assert!(
        pinned(&full) > pinned(&shrunk),
        "the shrunk budget must evict pipelined edges: {} <= {}",
        pinned(&full),
        pinned(&shrunk)
    );
    assert!(
        shrunk.peak <= full.peak,
        "re-placement may never need more than the original peak"
    );

    // Run both placements; placement moves intermediates, not answers.
    let generous = q.run(&hw).expect("full-budget run");
    let mut revised = q.clone();
    revised.budget = Some(Bytes(shrunk_budget));
    revised.cache_grant = Some(Bytes(0));
    let tight = revised.run(&hw).expect("shrunk-budget run");
    for run in [&generous, &tight] {
        assert_eq!(run.agg, expect, "placement must not change the answer");
    }
    assert!(
        tight.report.total >= generous.report.total,
        "materializing evicted edges cannot be free"
    );
}

#[test]
fn plan_ladder_materializes_before_dropping_skew() {
    // The new top rung: a faulting plan first gives up pipelining
    // (force-materialize intermediates, fidelity kept), *then* drops
    // skew-awareness, and only then is shed — single-join fallbacks
    // cannot answer a multi-operator query.
    let mut q = chain_query(2);
    q.skew = SkewPolicy::aware();
    let mut op = Operator::Plan(Box::new(q));

    op = downgrade_operator(&op).expect("rung 1");
    match &op {
        Operator::Plan(p) => {
            assert!(p.force_materialize, "rung 1 must force-materialize");
            assert!(p.skew.is_aware(), "rung 1 must keep skew-awareness");
        }
        other => panic!("expected a plan, got {}", other.label()),
    }
    op = downgrade_operator(&op).expect("rung 2");
    match &op {
        Operator::Plan(p) => {
            assert!(p.force_materialize);
            assert!(!p.skew.is_aware(), "rung 2 drops the skew policy");
        }
        other => panic!("expected a plan, got {}", other.label()),
    }
    assert!(
        downgrade_operator(&op).is_none(),
        "a fully degraded plan has no further rung"
    );

    // The single-join ladder is untouched.
    let mut op = Operator::triton();
    let mut rungs = vec![op.label()];
    while let Some(next) = downgrade_operator(&op) {
        op = next;
        rungs.push(op.label());
    }
    assert_eq!(rungs, vec!["triton", "cpu-part", "cpu-radix"]);
}

#[test]
fn plan_rollups_reconcile_with_latency() {
    // A force-materialized TPC-H Q3 tenant next to an ordinary join
    // tenant: the plan's phase rollups (queue + select + bloom +
    // partitioning + join + materialize + aggregate) must sum to its
    // recorded latency within one simulated nanosecond.
    let hw = hw();
    let w = TpchSpec::q3(2, K).generate();
    let mut pq = tpch_query(&w);
    pq.force_materialize = true;
    let join_w = triton_datagen::WorkloadSpec::paper_default(8, K).generate();
    let res = Scheduler::new(hw, SchedulerConfig::default()).run(vec![
        JoinQuery::plan("q3", pq, Ns::ZERO),
        JoinQuery::new("join", join_w, Ns::ZERO),
    ]);
    assert_eq!(res.metrics.completed, 2);
    let c = res
        .outcomes
        .iter()
        .filter_map(|o| o.completed())
        .find(|c| c.operator == "plan")
        .expect("the plan tenant completed");

    let plan_rollups: Vec<_> = res
        .metrics
        .phases
        .iter()
        .filter(|p| p.operator == "plan")
        .collect();
    let total: f64 = plan_rollups.iter().map(|p| p.time.0).sum();
    let latency = c.latency().0;
    assert!(
        (total - latency).abs() <= 1.0,
        "plan rollups {total} must reconcile with latency {latency}"
    );
    for key in [
        "queue",
        "select",
        "bloom",
        "join",
        "materialize",
        "aggregate",
    ] {
        assert!(
            plan_rollups.iter().any(|p| p.phase == key),
            "missing plan rollup {key}: {plan_rollups:?}"
        );
    }
    // Every rollup key is a normalised phase key.
    for p in &plan_rollups {
        assert_eq!(p.phase, phase_key(&p.phase), "unnormalised {}", p.phase);
    }
}

#[test]
fn plan_serving_replays_byte_identically() {
    let serve = || {
        let w = TpchSpec::q3(2, K).generate();
        let res = Scheduler::new(hw(), SchedulerConfig::default()).run(vec![JoinQuery::plan(
            "q3",
            tpch_query(&w),
            Ns::ZERO,
        )]);
        assert_eq!(res.metrics.completed, 1);
        let json = to_chrome_json(&res.trace);
        validate_chrome(&json).unwrap();
        (res.metrics, json)
    };
    let (m1, t1) = serve();
    let (m2, t2) = serve();
    assert_eq!(m1, m2, "metrics must replay exactly");
    assert_eq!(m1.to_json(), m2.to_json(), "metrics JSON must be stable");
    assert_eq!(t1, t2, "chrome traces must be byte-identical");
}
