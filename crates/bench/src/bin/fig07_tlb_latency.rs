//! Fig 7: TLB miss latency for GPU and CPU memory (pointer chase).
fn main() {
    triton_bench::figs::fig07::print(&triton_bench::hw());
}
