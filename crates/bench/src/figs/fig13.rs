//! Fig 13 (and its simplified form, Fig 1): scaling the build and probe
//! relations from 128 to 2048 million tuples against six operators.
//!
//! Series: CPU radix join on POWER9 and Xeon, the GPU no-partitioning
//! join with linear probing and perfect hashing, and the Triton join with
//! bucket chaining and perfect hashing.

use triton_core::{CpuRadixJoin, HashScheme, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One size point of Fig 13.
#[derive(Debug, Clone)]
pub struct Row {
    /// Relation size in modeled million tuples (per relation).
    pub m_tuples: u64,
    /// CPU radix join, POWER9, G tuples/s.
    pub cpu_p9: f64,
    /// CPU radix join, Xeon.
    pub cpu_xeon: f64,
    /// GPU no-partitioning join, linear probing.
    pub npj_lp: f64,
    /// GPU no-partitioning join, perfect hashing.
    pub npj_perfect: f64,
    /// Triton join, bucket chaining.
    pub triton_bc: f64,
    /// Triton join, perfect hashing.
    pub triton_perfect: f64,
}

/// Run the sweep over `sizes` (modeled M tuples per relation).
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    sizes
        .iter()
        .map(|&m| {
            let w = WorkloadSpec::paper_default(m, k).generate();
            let triton_pf = TritonJoin {
                scheme: HashScheme::Perfect,
                ..TritonJoin::default()
            };
            Row {
                m_tuples: m,
                cpu_p9: CpuRadixJoin::power9(HashScheme::BucketChaining)
                    .run(&w, hw)
                    .throughput_gtps(),
                cpu_xeon: CpuRadixJoin::xeon(HashScheme::BucketChaining)
                    .run(&w, hw)
                    .throughput_gtps(),
                npj_lp: NoPartitioningJoin::linear_probing()
                    .run(&w, hw)
                    .throughput_gtps(),
                npj_perfect: NoPartitioningJoin::perfect().run(&w, hw).throughput_gtps(),
                triton_bc: TritonJoin::default().run(&w, hw).throughput_gtps(),
                triton_perfect: triton_pf.run(&w, hw).throughput_gtps(),
            }
        })
        .collect()
}

/// Print the figure (full Fig 13 table).
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner(
        "Fig 13",
        "scaling the build & probe relation size (G tuples/s)",
    );
    let mut t = crate::Table::new([
        "M tuples",
        "CPU P9",
        "CPU Xeon",
        "NPJ LP",
        "NPJ Perfect",
        "Triton BC",
        "Triton Perfect",
    ]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            crate::f3(r.cpu_p9),
            crate::f3(r.cpu_xeon),
            format!("{:.4}", r.npj_lp),
            crate::f3(r.npj_perfect),
            crate::f3(r.triton_bc),
            crate::f3(r.triton_perfect),
        ]);
    }
    t.print();
}

/// Print the Fig 1 (headline) subset: perfect hashing only.
pub fn print_headline(hw: &HwConfig, sizes: &[u64]) {
    crate::banner(
        "Fig 1",
        "headline: CPU radix vs GPU NPJ vs Triton (perfect hashing, G tuples/s)",
    );
    let mut t = crate::Table::new(["M tuples", "CPU Radix", "GPU NPJ", "GPU Triton"]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            crate::f3(r.cpu_p9),
            crate::f3(r.npj_perfect),
            crate::f3(r.triton_perfect),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        let hw = HwConfig::ac922().scaled(2048);
        run(&hw, &[128, 512, 1536, 2048])
    }

    #[test]
    fn fig13_shapes_hold() {
        let rows = rows();
        let small = &rows[0];
        let large = &rows[3];

        // In-core: the GPU baselines beat the CPU.
        assert!(small.npj_perfect > small.cpu_p9 * 1.5);
        // Out-of-core: NPJ collapses, Triton prevails.
        assert!(
            large.npj_lp < small.npj_lp / 50.0,
            "LP must collapse: {} vs {}",
            large.npj_lp,
            small.npj_lp
        );
        assert!(large.triton_bc > large.npj_perfect);
        assert!(
            large.triton_bc > large.cpu_p9 * 1.4,
            "Triton {} vs P9 {}",
            large.triton_bc,
            large.cpu_p9
        );
        // Graceful degradation: Triton retains >= 60% of its peak.
        let peak = rows.iter().map(|r| r.triton_bc).fold(0.0f64, f64::max);
        assert!(large.triton_bc > 0.6 * peak);
        // Hashing scheme matters little for the partitioned join...
        assert!((large.triton_bc / large.triton_perfect - 1.0).abs() < 0.1);
        // ...but enormously for the no-partitioning join (paper: 400x).
        assert!(large.npj_perfect / large.npj_lp > 20.0);
    }

    #[test]
    fn xeon_never_beats_power9() {
        for r in rows() {
            assert!(r.cpu_xeon <= r.cpu_p9 * 1.05, "{r:?}");
        }
    }
}
