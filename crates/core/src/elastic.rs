//! Elastic memory policy for the Triton join: mid-query grant changes,
//! runtime re-partitioning, and depth-bounded recursive spilling.
//!
//! The serving runtime (triton-exec) fixes an admission grant when a
//! query starts; under bursty arrivals or an ECC retirement the grant
//! may need to move *mid-query*. "Design Trade-offs for a Robust Dynamic
//! Hybrid Hash Join" (Jahangiri & Carey) maps the adaptivity space this
//! module implements for the GPU join:
//!
//! * **Grant schedule** — a deterministic list of [`GrantStep`]s applied
//!   at partition-pair boundaries: the join's cache budget becomes
//!   whatever the step says, and the executor evicts (or reloads) the
//!   delta through the real link cost model, coldest pairs first.
//! * **Runtime re-partitioning** — when a pair's staging demand
//!   overflows what the (possibly shrunk) grant left free, the executor
//!   splits the offending pair with [`ElasticPolicy::repart_bits`] extra
//!   radix bits per recursion level instead of eating the whole
//!   overflow as a flat spill.
//! * **Depth-bounded recursion** — [`levels_needed`] computes how many
//!   levels bring the demand under capacity; [`ElasticPolicy::max_depth`]
//!   caps it, and any residual past the bound still pays the flat spill
//!   (the robustness guarantee: bounded recursion, never unbounded).
//! * **Spill-victim order** — [`spill_order`] ranks pairs by the pass-1
//!   hotness histogram (see [`crate::skew`]), coldest first, so an
//!   eviction forced by a shrink takes the pages that were least worth
//!   caching.
//!
//! Everything here is pure planning — deterministic, clock-free — and
//! the default policy is **disabled**, which keeps the executor
//! bit-identical to the pre-elastic code.

/// One scheduled change to the join's cache budget, applied just before
/// partition pair `at_pair` of the first-pass fanout is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantStep {
    /// Pair index (in submission order) the revision lands before.
    pub at_pair: u64,
    /// The revised cache budget in bytes from that pair on. Smaller than
    /// the current budget ⇒ shrink (evict coldest unprocessed pairs);
    /// larger ⇒ grow (reload the hottest evicted ones).
    pub cache_bytes: u64,
}

/// A deterministic mid-query grant schedule: the revisions the serving
/// scheduler decided on, replayed by the join at pair boundaries. Steps
/// are applied in order; several steps may land on the same pair (the
/// last one wins), which is how an adversarial fuzzed schedule stresses
/// the eviction path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrantSchedule {
    /// The scheduled revisions, sorted by [`GrantStep::at_pair`] at
    /// construction.
    pub steps: Vec<GrantStep>,
}

impl GrantSchedule {
    /// Build a schedule; steps are sorted by pair (stable, so same-pair
    /// steps keep their submission order and the last one wins).
    #[must_use]
    pub fn new(mut steps: Vec<GrantStep>) -> Self {
        steps.sort_by_key(|s| s.at_pair);
        GrantSchedule { steps }
    }

    /// The budget in force from pair `pair` on, if any step has landed
    /// by then: the last step with `at_pair <= pair`.
    #[must_use]
    pub fn budget_at(&self, pair: u64) -> Option<u64> {
        self.steps
            .iter()
            .rfind(|s| s.at_pair <= pair)
            .map(|s| s.cache_bytes)
    }

    /// Whether the schedule is empty (no revision ever lands).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Elastic memory policy of the Triton join. The default is disabled:
/// the executor is bit-identical to the pre-elastic code until a caller
/// (or the serving scheduler) opts in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElasticPolicy {
    /// Master switch. Off ⇒ the remaining fields are ignored.
    pub enabled: bool,
    /// Maximum recursive re-partitioning depth for one overflowing pair.
    /// Zero falls back to the flat spill immediately.
    pub max_depth: u32,
    /// Extra radix bits per recursion level on the offending pair.
    pub repart_bits: u32,
    /// The mid-query grant revisions to replay at pair boundaries.
    pub schedule: GrantSchedule,
}

impl ElasticPolicy {
    /// An enabled policy with the paper-guided defaults (3 levels deep,
    /// 2 extra bits per level — 4× fanout per recursion) and no
    /// scheduled revisions.
    #[must_use]
    pub fn adaptive() -> Self {
        ElasticPolicy {
            enabled: true,
            max_depth: 3,
            repart_bits: 2,
            schedule: GrantSchedule::default(),
        }
    }

    /// [`Self::adaptive`] with a grant schedule attached.
    #[must_use]
    pub fn with_schedule(schedule: GrantSchedule) -> Self {
        ElasticPolicy {
            schedule,
            ..Self::adaptive()
        }
    }

    /// Recursion depth for a pair whose staging demand is
    /// `demand_bytes` against `capacity_bytes` of free staging:
    /// [`levels_needed`] clamped to the policy's bound.
    #[must_use]
    pub fn depth_for(&self, demand_bytes: u64, capacity_bytes: u64) -> u32 {
        levels_needed(demand_bytes, capacity_bytes, self.repart_bits).min(self.max_depth)
    }
}

/// Smallest number of re-partitioning levels (each multiplying the
/// fanout by `2^bits`) that brings `demand` under `capacity`, assuming a
/// level divides the offending partition's demand evenly. Returns 0 when
/// the demand already fits. Saturates at 64 levels — with `bits >= 1`
/// any demand shrinks below any non-zero capacity long before that, so
/// the cap only guards the degenerate `bits == 0` / `capacity == 0`
/// inputs (where no amount of splitting ever helps).
#[must_use]
pub fn levels_needed(demand: u64, capacity: u64, bits: u32) -> u32 {
    if demand <= capacity {
        return 0;
    }
    if bits == 0 || capacity == 0 {
        return u64::BITS;
    }
    let mut levels = 0u32;
    let mut d = demand;
    while d > capacity && levels < u64::BITS {
        d >>= bits.min(63);
        levels += 1;
    }
    levels
}

/// Spill-victim order over partition pairs: ascending hotness (the
/// pass-1 histogram byte totals from [`crate::skew`]'s ranking), ties
/// broken on index — the coldest pair spills first, so a forced
/// eviction takes the pages residency was worth the least on.
#[must_use]
pub fn spill_order(hotness: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..hotness.len()).collect();
    order.sort_by_key(|&i| (hotness[i], i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_disabled() {
        let p = ElasticPolicy::default();
        assert!(!p.enabled);
        assert!(p.schedule.is_empty());
        assert!(ElasticPolicy::adaptive().enabled);
        assert_eq!(ElasticPolicy::adaptive().max_depth, 3);
    }

    #[test]
    fn schedule_sorts_and_last_step_wins() {
        let s = GrantSchedule::new(vec![
            GrantStep {
                at_pair: 4,
                cache_bytes: 100,
            },
            GrantStep {
                at_pair: 1,
                cache_bytes: 900,
            },
            GrantStep {
                at_pair: 4,
                cache_bytes: 50,
            },
        ]);
        assert_eq!(s.budget_at(0), None);
        assert_eq!(s.budget_at(1), Some(900));
        assert_eq!(s.budget_at(3), Some(900));
        assert_eq!(s.budget_at(4), Some(50), "same-pair steps: last wins");
        assert_eq!(s.budget_at(u64::MAX), Some(50));
    }

    #[test]
    fn levels_needed_is_monotone_and_bounded() {
        assert_eq!(levels_needed(100, 100, 2), 0, "fits: no recursion");
        assert_eq!(levels_needed(101, 100, 2), 1);
        assert_eq!(levels_needed(400, 100, 2), 1);
        assert_eq!(levels_needed(500, 100, 2), 2);
        assert_eq!(levels_needed(1 << 20, 1, 1), 20);
        // Degenerate inputs saturate instead of spinning.
        assert_eq!(levels_needed(2, 1, 0), u64::BITS);
        assert_eq!(levels_needed(2, 0, 4), u64::BITS);
        // Monotone in demand for fixed capacity/bits.
        let mut last = 0;
        for d in [10u64, 100, 1000, 10_000, 100_000] {
            let l = levels_needed(d, 10, 1);
            assert!(l >= last);
            last = l;
        }
        // The policy clamp caps the depth.
        let p = ElasticPolicy::adaptive();
        assert_eq!(p.depth_for(u64::MAX, 1), p.max_depth);
        assert_eq!(p.depth_for(1, 1), 0);
    }

    #[test]
    fn spill_order_is_coldest_first() {
        let order = spill_order(&[50, 10, 90, 10, 0]);
        assert_eq!(order, vec![4, 1, 3, 0, 2]);
        // Always a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(spill_order(&[]).is_empty());
    }
}
