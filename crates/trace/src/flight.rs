//! The flight recorder: a bounded ring of recent events, dumped onto a
//! trace track when something goes wrong.

use std::collections::VecDeque;

use crate::event::{Attr, TraceEvent};
use crate::recorder::Trace;

/// A bounded ring buffer of recent events. Recording is O(1) and keeps
/// only the most recent `capacity` events; [`FlightRecorder::dump`]
/// replays the ring onto a trace track so a fault ships with its
/// prehistory (the admits, retries, and downgrades that preceded it).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    recorded: u64,
    dumps: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            recorded: 0,
            dumps: 0,
        }
    }

    /// Record an event, evicting the oldest once full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently retained (oldest first).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (retained or evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Dumps performed so far.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// Dump the ring onto `(pid, tid)` of `trace`: a `flight.dump`
    /// marker instant at `ts_ns` explaining why, followed by the
    /// retained events (at their original timestamps, tagged with the
    /// dump sequence number). Returns the number of events replayed.
    /// The ring keeps rolling afterwards — it is not cleared.
    pub fn dump(
        &mut self,
        trace: &mut Trace,
        pid: u64,
        tid: u64,
        reason: &str,
        ts_ns: f64,
    ) -> usize {
        self.dump_with_context(trace, pid, tid, reason, ts_ns, &[])
    }

    /// Like [`FlightRecorder::dump`], but stamping `context` attributes
    /// onto the `flight.dump` marker — the owner's latest resource
    /// snapshot (memory occupancy, link utilization, ...), so post-fault
    /// forensics show the machine state at the decision point, not just
    /// the event prehistory.
    pub fn dump_with_context(
        &mut self,
        trace: &mut Trace,
        pid: u64,
        tid: u64,
        reason: &str,
        ts_ns: f64,
        context: &[Attr],
    ) -> usize {
        self.dumps += 1;
        let seq = self.dumps;
        let replayed = self.buf.len();
        trace
            .instant(pid, tid, "flight.dump", ts_ns)
            .attr(Attr::str("reason", reason))
            .attr(Attr::u64("dump_seq", seq))
            .attr(Attr::u64("events", replayed as u64))
            .attr(Attr::u64("evicted", self.recorded - replayed as u64))
            .attrs(context.iter().cloned());
        for ev in &self.buf {
            let mut replay = ev.clone();
            replay.pid = pid;
            replay.tid = tid;
            replay.attrs.push(Attr::u64("dump_seq", seq));
            trace.push(replay);
        }
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(i: u64) -> TraceEvent {
        let mut t = Trace::new();
        let ev = t.instant(9, 9, format!("ev{i}"), i as f64).clone();
        ev
    }

    #[test]
    fn wraparound_keeps_most_recent_in_order() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.record(marker(i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.recorded(), 10);
        let names: Vec<String> = fr.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["ev6", "ev7", "ev8", "ev9"]);
    }

    #[test]
    fn dump_replays_ring_with_marker_first() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3 {
            fr.record(marker(i));
        }
        let mut trace = Trace::new();
        let n = fr.dump(&mut trace, 0, 1, "kernel-fault", 42.0);
        assert_eq!(n, 3);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events()[0].name, "flight.dump");
        assert_eq!(trace.events()[1].name, "ev0");
        // Replayed events land on the dump track, not their origin.
        assert_eq!(trace.events()[1].pid, 0);
        assert_eq!(trace.events()[1].tid, 1);
        // A second dump is tagged with the next sequence number.
        fr.record(marker(3));
        fr.dump(&mut trace, 0, 1, "revoked", 50.0);
        assert_eq!(fr.dumps(), 2);
        let second_marker = &trace.events()[4];
        assert_eq!(second_marker.name, "flight.dump");
        assert!(second_marker
            .attrs
            .iter()
            .any(|a| a.key == "dump_seq" && a.value == crate::AttrValue::U64(2)));
    }

    #[test]
    fn dump_with_context_stamps_the_marker_only() {
        let mut fr = FlightRecorder::new(8);
        fr.record(marker(0));
        fr.record(marker(1));
        let mut trace = Trace::new();
        let ctx = [
            Attr::u64("gpu_used_bytes", 4096),
            Attr::u64("link_util_ppm", 750_000),
        ];
        fr.dump_with_context(&mut trace, 0, 1, "ecc-retirement", 99.0, &ctx);
        let m = &trace.events()[0];
        assert_eq!(m.name, "flight.dump");
        let get = |key: &str| {
            m.attrs
                .iter()
                .find(|a| a.key == key)
                .map(|a| a.value.clone())
        };
        assert_eq!(get("gpu_used_bytes"), Some(crate::AttrValue::U64(4096)));
        assert_eq!(get("link_util_ppm"), Some(crate::AttrValue::U64(750_000)));
        // Replayed events carry the dump tag, not the context.
        for ev in &trace.events()[1..] {
            assert!(ev.attrs.iter().all(|a| a.key != "gpu_used_bytes"));
        }
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.record(marker(1));
        fr.record(marker(2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot()[0].name, "ev2");
    }
}
