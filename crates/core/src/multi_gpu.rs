//! Multi-GPU Triton join.
//!
//! An extension along the paper's Section 7 related work (MG-Join, Paul et
//! al. 2021; "Scaling joins to a thousand GPUs", Gao & Sakharnykh 2021):
//! the AC922 hosts two GPUs, each with its *own* NVLink to its socket, so
//! the out-of-core first pass scales with the number of GPUs — every GPU
//! partitions its shard of the input over its private link.
//!
//! The execution plan follows the standard multi-GPU radix-join shape:
//!
//! 1. **Shard** — the base relations are striped across the GPUs.
//! 2. **Pass 1 + exchange** — each GPU radix-partitions its shard at the
//!    global fanout; partition *p* is owned by GPU `p mod G`, so a
//!    `(G-1)/G` share of each shard crosses the peer links to its owner's
//!    memory (landing in the owner's hybrid cached array, like a
//!    single-GPU spill).
//! 3. **Local pipeline** — every GPU runs the Triton second pass + join
//!    over its owned partitions, exactly as in the single-GPU plan.
//!
//! GPUs advance in parallel; the exchange is all-to-all and overlaps the
//! tail of pass 1 in real systems, modeled here as a separate step bounded
//! by the per-GPU link bandwidth.

use triton_datagen::{multiply_shift, radix, Relation, Workload, WorkloadSpec, TUPLE_BYTES};
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{HwConfig, LinkModel};

use crate::report::{JoinReport, JoinResult, PhaseReport};
use crate::triton::TritonJoin;

/// Multi-GPU wrapper around the Triton join.
#[derive(Debug, Clone)]
pub struct MultiGpuTritonJoin {
    /// Number of GPUs (each with a private fast interconnect).
    pub num_gpus: u32,
    /// Per-GPU join configuration.
    pub per_gpu: TritonJoin,
}

impl MultiGpuTritonJoin {
    /// Create for `num_gpus` GPUs with default per-GPU settings.
    pub fn new(num_gpus: u32) -> Self {
        assert!(num_gpus >= 1);
        MultiGpuTritonJoin {
            num_gpus,
            per_gpu: TritonJoin::default(),
        }
    }

    /// Execute the join.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> JoinReport {
        let g = self.num_gpus as usize;
        if g == 1 {
            return self.per_gpu.run(w, hw);
        }
        let total_bytes = w.total_tuples() * TUPLE_BYTES;
        let r_bytes = w.r.len() as u64 * TUPLE_BYTES;
        let b1 = TritonJoin::pass1_bits(r_bytes, total_bytes, hw);

        // --- Ownership split: partition p belongs to GPU p mod G. The
        // same hash bits that drive pass 1 drive placement, so each GPU's
        // sub-join is complete and disjoint.
        let owner = |key: u64| radix(multiply_shift(key), 0, b1) % g;
        let mut shards: Vec<(Relation, Relation)> = (0..g)
            .map(|_| (Relation::default(), Relation::default()))
            .collect();
        for (k, r) in w.r.iter() {
            let s = &mut shards[owner(k)].0;
            s.keys.push(k);
            s.rids.push(r);
        }
        for (k, r) in w.s.iter() {
            let s = &mut shards[owner(k)].1;
            s.keys.push(k);
            s.rids.push(r);
        }

        // --- Per-GPU sub-joins (run in parallel across GPUs): reuse the
        // single-GPU plan per owned sub-workload. Its internal first pass
        // stands in for this GPU's share of the global pass 1 (same bytes
        // through the same private link).
        let mut result = JoinResult::empty();
        let mut slowest = Ns::ZERO;
        let mut phases: Vec<PhaseReport> = Vec::new();
        for (gpu, (r, s)) in shards.into_iter().enumerate() {
            let sub = Workload {
                spec: WorkloadSpec {
                    r_tuples_modeled: r.len() as u64 * w.spec.scale,
                    s_tuples_modeled: s.len() as u64 * w.spec.scale,
                    ..w.spec.clone()
                },
                r,
                s,
            };
            if sub.r.is_empty() && sub.s.is_empty() {
                continue;
            }
            let rep = self.per_gpu.run(&sub, hw);
            result.merge(&rep.result);
            slowest = slowest.max(rep.total);
            if gpu == 0 {
                phases = rep.phases;
            }
        }

        // --- Exchange: each shard was produced on its *source* GPU, and
        // a (G-1)/G share of it crosses the peer fabric to the owner. The
        // per-GPU cost is bounded by its link: send + receive of that
        // share of its 1/G slice of the data.
        let per_gpu_bytes = total_bytes / g as u64;
        let crossing = per_gpu_bytes * (g as u64 - 1) / g as u64;
        let link = LinkModel::new(&hw.link);
        let t_exchange = link.seq_transfer_time(Bytes(crossing));
        phases.push(PhaseReport::cpu(
            format!("Exchange ({}-GPU all-to-all)", g),
            t_exchange,
        ));

        JoinReport {
            name: format!("GPU Triton Join ({g} GPUs)"),
            phases,
            total: slowest + t_exchange,
            tuples_actual: w.total_tuples(),
            tuples_modeled: w.total_tuples_modeled(),
            result,
            executor: Executor::Gpu,
            overlap: None,
            placement: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;

    #[test]
    fn multi_gpu_result_matches_reference() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(64, 1024).generate();
        let expect = reference_join(&w);
        for g in [1u32, 2, 4, 8] {
            let rep = MultiGpuTritonJoin::new(g).run(&w, &hw);
            assert_eq!(rep.result, expect, "{g} GPUs");
            assert_eq!(rep.tuples_actual, w.total_tuples());
        }
    }

    #[test]
    fn two_gpus_speed_up_out_of_core_joins() {
        let hw = HwConfig::ac922().scaled(512);
        let w = WorkloadSpec::paper_default(2048, 512).generate();
        let one = MultiGpuTritonJoin::new(1).run(&w, &hw);
        let two = MultiGpuTritonJoin::new(2).run(&w, &hw);
        let speedup = one.total.0 / two.total.0;
        assert!(
            (1.3..=2.2).contains(&speedup),
            "2-GPU speedup {speedup} (1 GPU {}, 2 GPUs {})",
            one.total,
            two.total
        );
    }

    #[test]
    fn scaling_monotone_and_bounded() {
        let hw = HwConfig::ac922().scaled(512);
        let w = WorkloadSpec::paper_default(2048, 512).generate();
        let t = |g: u32| MultiGpuTritonJoin::new(g).run(&w, &hw).total.0;
        let s2 = t(1) / t(2);
        let s8 = t(1) / t(8);
        assert!(s8 > s2, "more GPUs must still help: {s2} vs {s8}");
        // Aggregate GPU memory grows with G, so per-GPU workloads cache
        // better and scaling can run mildly super-linear — but not wildly.
        assert!(s8 < 8.0 * 1.3, "scaling out of bounds: {s8}");
    }

    #[test]
    fn exchange_phase_reported() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(128, 1024).generate();
        let rep = MultiGpuTritonJoin::new(4).run(&w, &hw);
        assert!(rep.phases.iter().any(|p| p.name.starts_with("Exchange")));
    }
}
