//! Microbenchmarks of the serving scheduler's decision overhead:
//! host-side wall time of admission + arbitration per 1k arrivals,
//! comparing the event-per-arrival loop against the epoch-batched
//! throughput path, with and without the cost/plan memos. The fluid
//! simulation does no real joins per *re*-pricing when the memo hits,
//! so the spread between the configurations is exactly the scheduler
//! overhead the throughput path removes.

use triton_bench::micro::Group;
use triton_datagen::WorkloadSpec;
use triton_exec::{JoinQuery, Scheduler, SchedulerConfig};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

const K: u64 = 512;
const ARRIVALS: usize = 1000;

/// 1k arrivals: a bounded pool of repeat statements (4 build families ×
/// 4 distinct probe batches each) cycling at a fixed cadence — the
/// sustained-load shape the epoch batch and the pricing memo both
/// target: builds are shared and repeat statements re-price the same
/// (workload, grant) pairs.
fn arrivals() -> Vec<JoinQuery> {
    let families: Vec<_> = (0..4)
        .map(|f| {
            let mut spec = WorkloadSpec::paper_default(4, K);
            spec.seed = 0xABBA ^ (f as u64);
            spec.generate()
        })
        .collect();
    let pool: Vec<(usize, triton_datagen::Workload)> = (0..16)
        .map(|s| {
            let fam = s % families.len();
            let base = &families[fam];
            let w = if s < families.len() {
                base.clone()
            } else {
                JoinQuery::probe_batch(base, s as u64)
            };
            (fam, w)
        })
        .collect();
    (0..ARRIVALS)
        .map(|i| {
            let (fam, w) = &pool[i % pool.len()];
            let mut q = JoinQuery::new(format!("tenant-{fam}"), w.clone(), Ns(i as f64 * 5_000.0));
            q.build_key = Some(*fam as u64);
            q
        })
        .collect()
}

fn bench_scheduler_overhead() {
    let hw = HwConfig::ac922().scaled(K);
    let queries = arrivals();
    let g = Group::new("scheduler_1k_arrivals", ARRIVALS as u64);

    let per_arrival = SchedulerConfig {
        cost_caching: false,
        ..SchedulerConfig::default()
    };
    g.bench("per_arrival_uncached", || {
        Scheduler::new(hw.clone(), per_arrival.clone()).run(queries.clone())
    });

    let cached = SchedulerConfig::default();
    g.bench("per_arrival_cached", || {
        Scheduler::new(hw.clone(), cached.clone()).run(queries.clone())
    });

    let batched_uncached = SchedulerConfig {
        cost_caching: false,
        ..SchedulerConfig::throughput()
    };
    g.bench("epoch_batched_uncached", || {
        Scheduler::new(hw.clone(), batched_uncached.clone()).run(queries.clone())
    });

    let batched = SchedulerConfig::throughput();
    g.bench("epoch_batched_cached", || {
        Scheduler::new(hw.clone(), batched.clone()).run(queries.clone())
    });
}

fn main() {
    bench_scheduler_overhead();
}
