//! One module per reproduced table/figure of the paper's evaluation.

pub mod ablations;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig_elastic;
pub mod fig_serve;
pub mod fig_skew;
pub mod fig_tpch;
pub mod serve_load;
pub mod table1;

/// The paper's default workload sizes in modeled million tuples.
pub const PAPER_WORKLOADS: [u64; 3] = [128, 512, 2048];

/// The Fig 13 / Fig 1 scaling axis in modeled million tuples.
pub const SCALING_AXIS: [u64; 8] = [128, 256, 512, 640, 896, 1024, 1536, 2048];
