//! CPU software write-combining radix partitioning (the baseline of
//! Sections 2.2 and 3.1).
//!
//! CPUs avoid TLB misses during partitioning by buffering one cacheline
//! per partition in the L3 cache and flushing buffers with (on x86)
//! non-temporal stores — classic SWWC. The technique has a capacity wall:
//! the buffers occupy `fanout x cacheline` bytes *per core*, so once they
//! outgrow the per-core last-level cache share the partitioner must split
//! the fanout over two passes. Section 6.2.1 observes exactly this on the
//! Xeon (1.25 MiB/core) above 1408 M tuples, while the POWER9
//! (5 MiB/core) stays single-pass.
//!
//! The partitioner is functional (it produces the same partition-major
//! output as the GPU algorithms); its time comes from the calibrated CPU
//! cost model.

use triton_datagen::{multiply_shift, radix, KEY_BYTES, TUPLE_BYTES};
use triton_hw::cpu::CpuPhaseCost;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{CpuConfig, HwConfig};

use crate::common::Partitioned;
use crate::prefix_sum::compute_histogram;

/// Bytes of SWWC buffer state per partition per core (a 128-byte buffer
/// plus offset bookkeeping in the micro-row layout).
pub const SWWC_BUFFER_BYTES: u64 = 256;

/// How many partitioning passes the CPU needs for `radix_bits` of fanout.
pub fn plan_passes(radix_bits: u32, cpu: &CpuConfig) -> u32 {
    let fanout = 1u64 << radix_bits;
    if fanout * SWWC_BUFFER_BYTES > cpu.llc_per_core.0 {
        2
    } else {
        1
    }
}

/// Result of a CPU partitioning run.
#[derive(Debug, Clone)]
pub struct CpuPartitionResult {
    /// The partition-major output.
    pub parts: Partitioned,
    /// Modeled time of all passes (histogram + scatter per pass).
    pub time: Ns,
    /// Number of passes used.
    pub passes: u32,
}

/// Partition `(keys, rids)` by `radix_bits` bits (after `skip_bits`) on the
/// CPU. `tuples_modeled` is the paper-scale cardinality driving the cost
/// model; the data itself is at simulation scale.
pub fn cpu_swwc_partition(
    keys: &[u64],
    rids: &[u64],
    radix_bits: u32,
    skip_bits: u32,
    tuples_modeled: u64,
    hw: &HwConfig,
) -> CpuPartitionResult {
    let passes = plan_passes(radix_bits, &hw.cpu);
    let time = cpu_partition_time(tuples_modeled, radix_bits, passes, hw);

    // Functional scatter (single combined pass; multi-pass execution
    // produces the identical partition-major output).
    let fanout = 1usize << radix_bits;
    let hist = compute_histogram(keys, 1, radix_bits, skip_bits);
    let mut out_keys = vec![0u64; keys.len()];
    let mut out_rids = vec![0u64; keys.len()];
    let mut cursors: Vec<usize> = hist.offsets[..fanout].to_vec();
    for (&k, &r) in keys.iter().zip(rids) {
        let p = radix(multiply_shift(k), skip_bits, radix_bits);
        out_keys[cursors[p]] = k;
        out_rids[cursors[p]] = r;
        cursors[p] += 1;
    }
    CpuPartitionResult {
        parts: Partitioned {
            keys: out_keys,
            rids: out_rids,
            offsets: hist.offsets,
            radix_bits,
            skip_bits,
        },
        time,
        passes,
    }
}

/// Modeled time of `passes` CPU partitioning passes over
/// `tuples_modeled` tuples, including the histogram scan of each pass.
pub fn cpu_partition_time(tuples_modeled: u64, radix_bits: u32, passes: u32, hw: &HwConfig) -> Ns {
    let cpu = &hw.cpu;
    let bits_per_pass = radix_bits.div_ceil(passes);
    let fanout_per_pass = 1u64 << bits_per_pass;
    // SWWC buffer pressure on the LLC slows the scatter as the buffers
    // approach the per-core cache share.
    let pressure = (fanout_per_pass * SWWC_BUFFER_BYTES) as f64 / cpu.llc_per_core.as_f64();
    let spill = 1.0 + 0.25 * pressure.min(1.0);

    let mut total = Ns::ZERO;
    for _ in 0..passes {
        let hist = CpuPhaseCost::new(
            Bytes(tuples_modeled * KEY_BYTES),
            Bytes(0),
            tuples_modeled,
            1.5,
        );
        let mut scatter = CpuPhaseCost::new(
            Bytes(tuples_modeled * TUPLE_BYTES),
            Bytes(tuples_modeled * TUPLE_BYTES),
            tuples_modeled,
            cpu.partition_cycles_per_tuple,
        );
        scatter.cache_spill_factor = spill;
        total += hist.time(cpu) + scatter.time(cpu);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;
    use triton_hw::CpuConfig;

    #[test]
    fn functional_partitions_correct() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        let res = cpu_swwc_partition(&w.r.keys, &w.r.rids, 6, 0, w.r.len() as u64, &hw);
        assert_eq!(res.parts.len(), w.r.len());
        for p in 0..res.parts.fanout() {
            let (ks, _) = res.parts.partition(p);
            for &k in ks {
                assert_eq!(radix(multiply_shift(k), 0, 6), p);
            }
        }
    }

    #[test]
    fn power9_stays_single_pass_at_paper_fanouts() {
        let p9 = CpuConfig::power9();
        assert_eq!(plan_passes(12, &p9), 1);
        assert_eq!(plan_passes(14, &p9), 1);
    }

    #[test]
    fn xeon_switches_to_two_passes() {
        let xeon = CpuConfig::xeon_gold_6126();
        // 1.25 MiB / 256 B = 5120 partitions: 2^12 fits, 2^13 does not.
        assert_eq!(plan_passes(12, &xeon), 1);
        assert_eq!(plan_passes(13, &xeon), 2);
        assert_eq!(plan_passes(18, &xeon), 2);
    }

    #[test]
    fn partition_throughput_near_paper_fig4() {
        // Fig 4: CPU-to-CPU partitioning at roughly 29 GiB/s on POWER9.
        let hw = HwConfig::ac922();
        let tuples = 2_000_000_000u64; // 32 GB
        let t = cpu_partition_time(tuples, 9, 1, &hw);
        let gibs = (tuples * TUPLE_BYTES) as f64 / (1u64 << 30) as f64 / t.as_secs();
        assert!((24.0..=36.0).contains(&gibs), "got {gibs} GiB/s");
    }

    #[test]
    fn two_passes_cost_roughly_double() {
        let hw = HwConfig::ac922();
        let one = cpu_partition_time(1_000_000_000, 14, 1, &hw);
        let two = cpu_partition_time(1_000_000_000, 14, 2, &hw);
        let ratio = two.0 / one.0;
        assert!((1.7..=2.1).contains(&ratio), "ratio {ratio}");
    }
}
