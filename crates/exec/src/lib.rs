//! # triton-exec
//!
//! A multi-tenant serving runtime for the Triton join: concurrent join
//! queries share one simulated AC922-class machine under memory-budget
//! admission control.
//!
//! The paper's Section 5.2 runs a join's *stages* concurrently on
//! disjoint SM sets because they bottleneck on different resources
//! (interconnect transfer vs. compute). This crate promotes that
//! arbitration from intra-query to inter-query: every in-flight query is
//! profiled into a [`triton_hw::ResourceVector`] of busy fractions
//! (link, GPU memory, SM issue slots, IOMMU, host CPU), and a weighted
//! max-min arbiter ([`triton_hw::fair_share_rates`]) sets each query's
//! execution speed so disjoint-bottleneck queries overlap nearly for
//! free while contending queries split the saturated resource — never
//! finishing later than a serial schedule.
//!
//! Pieces:
//!
//! * [`JoinQuery`] / [`Operator`] — per-query descriptors: workload,
//!   operator choice (Triton, no-partitioning, CPU radix), priority
//!   weight, deadline, arrival time, and a build-relation key.
//! * [`AdmissionController`] — GPU memory reservations through a
//!   [`triton_mem::SimAllocator`]: each admitted query gets its pipeline
//!   floor plus a cache grant, runs with `cache_bytes = Some(grant)`,
//!   and the reservation sum can never exceed device capacity.
//! * [`BuildCache`] — build-side sharing: probe batches naming the same
//!   build relation reuse its partitioned state instead of
//!   re-partitioning R per query.
//! * [`Scheduler`] — the fluid discrete-event loop: queue (priority
//!   order, bounded), admit, arbitrate speeds, advance to the next
//!   arrival/completion; backpressure and typed shedding
//!   ([`RejectReason`]) when the machine is full.
//! * [`SchedulerMetrics`] — aggregate throughput, p50/p99 latency
//!   (resolved by a bounded streaming log2 histogram), memory high-water
//!   marks, shed counts, fault/recovery accounting, and a stable JSON
//!   encoding for determinism checks.
//! * Telemetry ([`crate::observe`], [`triton_metrics`]) — a windowed
//!   time-series registry on the simulated clock: allocator occupancy
//!   and fragmentation gauges, link/SM utilization sampled off the
//!   arbitrated rates, per-phase progress counters, and Perfetto counter
//!   lanes; exposed on [`ServeResult::telemetry`] and byte-identical
//!   across same-seed replays.
//! * SLO accounting ([`SloAccount`]) — per-tenant latency-SLO
//!   attainment, shed counts, error-budget burn, and grant-revision
//!   counts, settled at scheduler decision points and threaded into
//!   [`ServeResult::slo`].
//! * Resilience ([`crate::fault`], [`crate::resilience`]) — replay a
//!   [`triton_hw::FaultPlan`] with [`Scheduler::run_with_faults`]: link
//!   degradations reshape demand vectors, ECC retirements shrink
//!   capacity and revoke reservations, kernel faults kill attempts; a
//!   [`RetryPolicy`] with deterministic backoff, a degradation ladder
//!   (Triton → CPU-partitioned → CPU radix), and a build-cache circuit
//!   breaker recover victims without ever changing answers.
//! * Elastic grants ([`MemoryGrant`] / [`GrantRevision`] /
//!   [`ElasticGrants`]) — admission grants are revisable contracts: the
//!   scheduler shrinks running queries' optional cache shares in place
//!   (priced through the link cost model, traced as `grant-revision`
//!   events) before it ever revokes or sheds, and the join itself
//!   absorbs mid-query shrinks by runtime re-partitioning with
//!   depth-bounded recursive spilling
//!   ([`triton_core::ElasticPolicy`]).
//!
//! Execution stays functional: every admitted query really runs its
//! operator and the per-query [`triton_core::JoinReport`] carries an
//! exact, verifiable join result — only the timing is arbitrated.
//!
//! # Quick start
//!
//! ```
//! use triton_exec::{JoinQuery, Scheduler, SchedulerConfig};
//! use triton_datagen::WorkloadSpec;
//! use triton_hw::{units::Ns, HwConfig};
//!
//! let hw = HwConfig::ac922().scaled(1024);
//! let queries: Vec<JoinQuery> = (0..4)
//!     .map(|i| {
//!         let w = WorkloadSpec::paper_default(16, 1024).generate();
//!         JoinQuery::new(format!("tenant-{i}"), w, Ns::ZERO)
//!     })
//!     .collect();
//! let result = Scheduler::new(hw, SchedulerConfig::default()).run(queries);
//! assert_eq!(result.metrics.completed, 4);
//! assert!(result.metrics.peak_gpu_reserved <= result.metrics.gpu_capacity);
//! println!("{}", result.metrics.summary());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod build_cache;
pub mod cost_cache;
pub mod demand;
pub mod fault;
pub mod metrics;
pub mod observe;
pub mod query;
pub mod resilience;
pub mod scheduler;
pub mod slo;

pub use admission::{
    operator_with_grant, AdmissionController, AdmissionError, GrantRevision, MemoryGrant,
    Reservation, RevisionOutcome,
};
pub use build_cache::{BuildCache, BuildHit, BUILD_RADIX_BITS, FULL_RANGE};
pub use cost_cache::{CostCache, CostKey};
pub use demand::ResourceDemand;
pub use fault::{degraded_vector, FaultCause, FaultOutcome};
pub use metrics::{percentile, PhaseRollup, SchedulerMetrics};
pub use observe::{
    query_pid, GaugeSample, Recorder, METRICS_WINDOW_NS, SCHEDULER_PID, SCHED_TID_FLIGHT,
    SCHED_TID_GAUGES, TID_LIFECYCLE,
};
pub use query::{JoinQuery, Operator, QueryId};
pub use resilience::{downgrade_operator, ElasticGrants, ResilienceConfig, RetryPolicy};
pub use scheduler::{
    CompletedQuery, Outcome, RejectReason, Scheduler, SchedulerConfig, ServeResult,
};
pub use slo::{tenant_of, SloAccount, DEFAULT_ERROR_BUDGET_PPM};
// Re-exported so serving callers can build fault plans without a direct
// triton-hw dependency.
pub use triton_hw::FaultPlan;
// Re-exported so serving callers can read the telemetry registry without
// a direct triton-metrics dependency.
pub use triton_metrics::{Log2Histogram, MetricsRegistry};
// Re-exported so serving callers can export and validate traces without
// a direct triton-trace dependency.
pub use triton_trace::{to_chrome_json, validate_chrome, Trace};
