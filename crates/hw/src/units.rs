//! Unit newtypes used throughout the simulator.
//!
//! The hardware model mixes quantities in very different units (wire bytes,
//! payload bytes, nanoseconds, GPU cycles, tuples). Thin newtypes keep the
//! arithmetic honest without getting in the way: each wraps a primitive,
//! supports the arithmetic the model needs, and converts explicitly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte count (payload, wire, or capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

/// A duration in nanoseconds. Fractional, because modeled rates rarely divide
/// evenly.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ns(pub f64);

/// A count of processor clock cycles (GPU or CPU depending on context).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cycles(pub f64);

pub(crate) const KIB: u64 = 1 << 10;
pub(crate) const MIB: u64 = 1 << 20;
pub(crate) const GIB: u64 = 1 << 30;

impl Bytes {
    /// Construct from KiB.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * KIB)
    }
    /// Construct from MiB.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * MIB)
    }
    /// Construct from GiB.
    pub const fn gib(n: u64) -> Self {
        Bytes(n * GIB)
    }
    /// Value as `f64` for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
    /// Value in GiB as `f64` (for reporting).
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }
    /// Value in MiB as `f64` (for reporting).
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
    /// Integer division rounding up (e.g. bytes per transaction).
    pub fn div_ceil(self, unit: u64) -> u64 {
        debug_assert!(unit > 0);
        self.0.div_ceil(unit)
    }
    /// Scale by a non-negative factor, rounding toward zero (e.g. "retire
    /// 15% of device memory").
    pub fn scaled(self, factor: f64) -> Bytes {
        debug_assert!(factor >= 0.0);
        Bytes((self.0 as f64 * factor) as u64)
    }
    /// This byte count as a fraction of `denom` (clamped to at least one
    /// byte, so a zero denominator reads as a ratio against 1 B rather
    /// than a NaN).
    pub fn ratio_of(self, denom: Bytes) -> f64 {
        self.0 as f64 / denom.0.max(1) as f64
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}
impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}
impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}
impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}
impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}
impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}
impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Ns {
    /// Construct from microseconds.
    pub fn micros(us: f64) -> Self {
        Ns(us * 1e3)
    }
    /// Construct from milliseconds.
    pub fn millis(ms: f64) -> Self {
        Ns(ms * 1e6)
    }
    /// Construct from seconds.
    pub fn secs(s: f64) -> Self {
        Ns(s * 1e9)
    }
    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }
    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1e6
    }
    /// Component-wise max.
    pub fn max(self, rhs: Ns) -> Ns {
        Ns(self.0.max(rhs.0))
    }
    /// Component-wise min.
    pub fn min(self, rhs: Ns) -> Ns {
        Ns(self.0.min(rhs.0))
    }
    /// Zero duration.
    pub const ZERO: Ns = Ns(0.0);
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}
impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}
impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}
impl Mul<f64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: f64) -> Ns {
        Ns(self.0 * rhs)
    }
}
impl Div<f64> for Ns {
    type Output = Ns;
    fn div(self, rhs: f64) -> Ns {
        Ns(self.0 / rhs)
    }
}
impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        Ns(iter.map(|n| n.0).sum())
    }
}
impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.as_millis())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} us", self.0 / 1e3)
        } else {
            write!(f, "{:.1} ns", self.0)
        }
    }
}

impl Cycles {
    /// Convert to time at a clock frequency in GHz.
    pub fn at_ghz(self, ghz: f64) -> Ns {
        Ns(self.0 / ghz)
    }
}
impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}
impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

/// Bandwidth expressed in bytes per second; converts byte volumes to time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BytesPerSec(pub f64);

impl BytesPerSec {
    /// Construct from decimal GB/s (vendor convention, e.g. NVLink 75 GB/s).
    pub fn gb(gb_per_s: f64) -> Self {
        BytesPerSec(gb_per_s * 1e9)
    }
    /// Construct from binary GiB/s (measurement convention in the paper).
    pub fn gib(gib_per_s: f64) -> Self {
        BytesPerSec(gib_per_s * GIB as f64)
    }
    /// Time to move `bytes` at this rate.
    pub fn time_for(self, bytes: Bytes) -> Ns {
        if bytes.0 == 0 {
            return Ns::ZERO;
        }
        Ns(bytes.as_f64() / self.0 * 1e9)
    }
    /// Value in GiB/s for reporting.
    pub fn as_gib(self) -> f64 {
        self.0 / GIB as f64
    }
    /// Component-wise min (e.g. capping a link at a slower bus rate).
    pub fn min(self, rhs: BytesPerSec) -> BytesPerSec {
        BytesPerSec(self.0.min(rhs.0))
    }
}

impl Mul<f64> for BytesPerSec {
    type Output = BytesPerSec;
    fn mul(self, rhs: f64) -> BytesPerSec {
        BytesPerSec(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::kib(2).0, 2048);
        assert_eq!(Bytes::mib(1).0, 1 << 20);
        assert_eq!(Bytes::gib(1).0, 1 << 30);
        assert_eq!(format!("{}", Bytes(512)), "512 B");
        assert_eq!(format!("{}", Bytes::kib(4)), "4.00 KiB");
    }

    #[test]
    fn bytes_div_ceil() {
        assert_eq!(Bytes(129).div_ceil(128), 2);
        assert_eq!(Bytes(128).div_ceil(128), 1);
        assert_eq!(Bytes(0).div_ceil(128), 0);
    }

    #[test]
    fn bytes_scalar_ops() {
        assert_eq!(Bytes(1024) / 8, Bytes(128));
        assert_eq!(Bytes(1000).scaled(0.15), Bytes(150));
        assert_eq!(Bytes(512).ratio_of(Bytes(1024)), 0.5);
        assert_eq!(
            Bytes(512).ratio_of(Bytes(0)),
            512.0,
            "zero denom clamps to 1 B"
        );
    }

    #[test]
    fn bandwidth_scalar_ops() {
        assert_eq!(BytesPerSec(100.0) * 0.5, BytesPerSec(50.0));
        assert_eq!(BytesPerSec(100.0).min(BytesPerSec(38.0)), BytesPerSec(38.0));
    }

    #[test]
    fn ns_conversions() {
        assert!((Ns::secs(1.5).0 - 1.5e9).abs() < 1.0);
        assert!((Ns::millis(2.0).as_secs() - 0.002).abs() < 1e-12);
        assert_eq!(Ns(3.0).max(Ns(5.0)), Ns(5.0));
    }

    #[test]
    fn bandwidth_time() {
        let bw = BytesPerSec::gb(75.0);
        let t = bw.time_for(Bytes(75_000_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(bw.time_for(Bytes(0)), Ns::ZERO);
    }

    #[test]
    fn cycles_at_clock() {
        let t = Cycles(1.53e9).at_ghz(1.53);
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }
}
