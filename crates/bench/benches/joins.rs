//! Microbenchmarks of the end-to-end join operators (host-side execution
//! speed of the simulation; uses the in-tree harness, see
//! `triton_bench::micro`).

use triton_bench::micro::Group;
use triton_core::{CpuRadixJoin, HashScheme, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

fn bench_joins() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(32, 2048).generate();
    let n = w.total_tuples();

    let g = Group::new("joins_32M_modeled", n);
    g.bench("triton", || TritonJoin::default().run(&w, &hw));
    let no_cache = TritonJoin {
        caching_enabled: false,
        ..TritonJoin::default()
    };
    g.bench("triton_no_cache", || no_cache.run(&w, &hw));
    g.bench("npj_perfect", || NoPartitioningJoin::perfect().run(&w, &hw));
    g.bench("npj_linear_probing", || {
        NoPartitioningJoin::linear_probing().run(&w, &hw)
    });
    g.bench("cpu_radix_p9", || {
        CpuRadixJoin::power9(HashScheme::BucketChaining).run(&w, &hw)
    });
}

fn bench_triton_sizes() {
    let hw = HwConfig::ac922().scaled(2048);
    let mut g = Group::new("triton_by_size", 0);
    for m in [8u64, 32, 128] {
        let w = WorkloadSpec::paper_default(m, 2048).generate();
        g.throughput(w.total_tuples());
        g.bench(&format!("{m}M"), || TritonJoin::default().run(&w, &hw));
    }
}

fn main() {
    bench_joins();
    bench_triton_sizes();
}
