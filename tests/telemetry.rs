//! End-to-end telemetry tests: the windowed time-series registry on
//! [`triton_exec::ServeResult::telemetry`] must reconcile exactly with
//! run totals — across shuffled submission orders, fault schedules, and
//! grant-revision schedules — and its aggregate counters must agree
//! with [`triton_exec::SchedulerMetrics`] and the per-tenant
//! [`triton_exec::SloAccount`] ledgers.

use triton_datagen::WorkloadSpec;
use triton_exec::{
    percentile, FaultPlan, JoinQuery, Log2Histogram, Scheduler, SchedulerConfig, ServeResult,
};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_metrics::sim_ns;

const K: u64 = 512;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// A deterministic batch of queries across three tenants.
fn tenants(n: usize, m_tuples: u64) -> Vec<JoinQuery> {
    (0..n)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(m_tuples, K);
            spec.seed ^= (i as u64) << 32;
            let tenant = ["dash", "etl", "batch"][i % 3];
            let mut q = JoinQuery::new(format!("{tenant}-{i}"), spec.generate(), Ns::ZERO);
            if i % 3 == 0 {
                q.deadline = Some(Ns(5e9));
            }
            q
        })
        .collect()
}

/// Deterministic Fisher-Yates driven by a splitmix-style LCG.
fn shuffled(mut queries: Vec<JoinQuery>, seed: u64) -> Vec<JoinQuery> {
    let mut x = seed | 1;
    for i in (1..queries.len()).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((x >> 33) as usize) % (i + 1);
        queries.swap(i, j);
    }
    queries
}

/// Every invariant a served result's telemetry must satisfy, regardless
/// of schedule shape: windowed rollups reconcile exactly with run
/// totals, aggregate counters agree with the scheduler metrics, and the
/// per-tenant SLO ledgers partition the terminal outcomes.
fn assert_reconciled(res: &ServeResult) {
    res.telemetry
        .reconcile()
        .expect("window sums must equal run totals exactly");

    // Telemetry counters agree with the scheduler's own accounting.
    assert_eq!(
        res.telemetry.counter("sched.completed"),
        res.metrics.completed
    );
    assert_eq!(res.telemetry.counter("sched.shed"), res.metrics.rejected);
    assert_eq!(
        res.telemetry.counter("sched.grant_revisions"),
        res.metrics.grant_revisions
    );
    assert_eq!(
        res.telemetry.counter("sched.faults"),
        res.metrics.faults_injected
    );
    assert_eq!(res.telemetry.counter("sched.tuples"), res.metrics.tuples);

    // The latency stream saw exactly one sample per completion, and its
    // window shards merge back to the run-total histogram.
    let hist = res
        .telemetry
        .histogram("sched.latency_ns")
        .expect("latency histogram must exist");
    assert_eq!(hist.count(), res.metrics.completed);
    let mut merged = Log2Histogram::new();
    for (_, shard) in res.telemetry.histogram_windows("sched.latency_ns") {
        merged.merge(shard);
    }
    assert_eq!(merged.count(), hist.count());
    assert_eq!(merged.sum(), hist.sum());

    // Per-window counter deltas sum to the total for every counter.
    for name in res.telemetry.counter_names() {
        let windows: u64 = res
            .telemetry
            .counter_windows(name)
            .iter()
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(windows, res.telemetry.counter(name), "{name}");
    }

    // SLO ledgers partition the terminal outcomes by tenant.
    let slo_completed: u64 = res.slo.iter().map(|a| a.completed).sum();
    let slo_shed: u64 = res.slo.iter().map(|a| a.shed).sum();
    assert_eq!(slo_completed, res.metrics.completed);
    assert_eq!(slo_shed, res.metrics.rejected);
    for a in &res.slo {
        assert!(a.slo_met <= a.slo_total, "{}", a.tenant);
        assert!(a.attainment_ppm() <= 1_000_000, "{}", a.tenant);
        assert_eq!(
            res.telemetry
                .counter(&format!("tenant.{}.enqueued", a.tenant)),
            a.completed + a.shed,
            "{}",
            a.tenant
        );
    }
}

#[test]
fn clean_run_reconciles_and_matches_scheduler_metrics() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(6, 24));
    assert_eq!(res.metrics.completed, 6);
    assert_reconciled(&res);
    // Exposition carries the counters and is non-trivial.
    let text = res.telemetry.expose_text();
    assert!(text.contains("sched.completed"), "{text}");
    assert!(text.contains("tenant.dash.enqueued"), "{text}");
}

/// Shuffling the submission order changes query ids and tie-breaks, but
/// every order must still reconcile exactly, and order-free aggregates
/// (tenant totals, completion counts) must not move.
#[test]
fn shuffled_submission_orders_all_reconcile() {
    let base = Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(6, 24));
    assert_reconciled(&base);
    for seed in [1u64, 7, 42] {
        let res =
            Scheduler::new(hw(), SchedulerConfig::default()).run(shuffled(tenants(6, 24), seed));
        assert_reconciled(&res);
        assert_eq!(res.metrics.completed, base.metrics.completed, "seed {seed}");
        for t in ["dash", "etl", "batch"] {
            assert_eq!(
                res.telemetry.counter(&format!("tenant.{t}.enqueued")),
                base.telemetry.counter(&format!("tenant.{t}.enqueued")),
                "seed {seed}: tenant {t}"
            );
        }
    }
}

/// Fault schedules (chaos plans) exercise retries, revocations, shed,
/// and fault counters; the rollups must still reconcile exactly.
#[test]
fn fault_schedules_reconcile() {
    let horizon = Scheduler::new(hw(), SchedulerConfig::default())
        .run(tenants(5, 24))
        .metrics
        .makespan;
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::chaos(seed, Ns(horizon.0 * 1.5), &hw());
        let res =
            Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(5, 24), &plan);
        assert_reconciled(&res);
        assert_eq!(
            res.telemetry.counter("sched.retries"),
            res.metrics.retries,
            "seed {seed}"
        );
    }
}

/// A mid-run GPU memory retirement forces grant revisions (and possibly
/// revocations); the revision counters must agree and the rollups must
/// reconcile.
#[test]
fn grant_revision_schedules_reconcile() {
    let horizon = Scheduler::new(hw(), SchedulerConfig::default())
        .run(tenants(6, 32))
        .metrics
        .makespan;
    let cap = hw().gpu.mem_capacity;
    let plan = FaultPlan::with_seed(9)
        .retire_gpu_mem(Ns(horizon.0 * 0.3), Bytes(cap.0 / 3))
        .retire_gpu_mem(Ns(horizon.0 * 0.6), Bytes(cap.0 / 8));
    let res =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(6, 32), &plan);
    assert_reconciled(&res);
    assert_eq!(
        res.telemetry.counter("sched.revocations"),
        res.metrics.revocations
    );
    let slo_revisions: u64 = res.slo.iter().map(|a| a.grant_revisions).sum();
    assert!(
        slo_revisions <= res.metrics.grant_revisions,
        "tenant-attributed revisions ({slo_revisions}) can never exceed the total ({})",
        res.metrics.grant_revisions
    );
}

/// The histogram-resolved p50/p99 on a real run agree with the exact
/// nearest-rank percentile of the completed latencies to within one
/// bucket width (<= 6.25% relative error).
#[test]
fn run_percentiles_agree_with_exact_nearest_rank() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(9, 24));
    let latencies: Vec<f64> = res.completed().map(|c| c.latency().0).collect();
    assert!(!latencies.is_empty());
    for (p, approx) in [(50, res.metrics.latency_p50), (99, res.metrics.latency_p99)] {
        let exact = percentile(&latencies, p as f64);
        let width = Log2Histogram::bucket_width_for(sim_ns(exact)) as f64;
        assert!(
            approx.0 <= exact && exact - approx.0 < width.max(1.0),
            "p{p}: histogram {} vs exact {exact} (width {width})",
            approx.0
        );
    }
}

/// Same seed, same plan: the full exposition (text and JSON) replays
/// byte-identically, clean and under chaos.
#[test]
fn expositions_replay_byte_identically() {
    let clean = || Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(5, 24));
    let (a, b) = (clean(), clean());
    assert_eq!(a.telemetry.expose_text(), b.telemetry.expose_text());
    assert_eq!(a.telemetry.expose_json(), b.telemetry.expose_json());

    let horizon = a.metrics.makespan;
    let plan = FaultPlan::chaos(5, Ns(horizon.0 * 1.5), &hw());
    let chaos =
        || Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(5, 24), &plan);
    let (c, d) = (chaos(), chaos());
    assert_eq!(c.telemetry.expose_text(), d.telemetry.expose_text());
    assert_eq!(c.telemetry.expose_json(), d.telemetry.expose_json());
    let slo_json: Vec<String> = c.slo.iter().map(|s| s.to_json()).collect();
    let slo_json2: Vec<String> = d.slo.iter().map(|s| s.to_json()).collect();
    assert_eq!(slo_json, slo_json2);
}
