//! Property-based tests (proptest) over the core data structures and
//! algorithm invariants, spanning crates.

use proptest::prelude::*;
use triton_core::{reference_join, BucketChainTable, LinearProbeTable, TritonJoin};
use triton_datagen::{multiply_shift, radix, Lcg, WorkloadSpec};
use triton_hw::link::{Alignment, Dir, LinkModel};
use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_mem::InterleavePattern;
use triton_part::{compute_histogram, make_partitioner, Algorithm, PassConfig, Span};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every partitioner is a permutation: all tuples present exactly
    /// once, each in the partition its hash bits dictate.
    #[test]
    fn partitioners_are_permutations(
        seed in 0u64..1000,
        n in 64usize..4000,
        bits in 1u32..7,
        skip in 0u32..4,
        alg_idx in 0usize..4,
    ) {
        let alg = Algorithm::all()[alg_idx];
        let hw = HwConfig::ac922().scaled(8192);
        let mut rng = seed;
        let mut next = || { rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1); rng >> 16 };
        let keys: Vec<u64> = (0..n).map(|_| next()).collect();
        let rids: Vec<u64> = (0..n).map(|_| next()).collect();
        let hist = compute_histogram(&keys, 8, bits, skip);
        let pass = PassConfig::new(bits, skip);
        let (out, cost) = make_partitioner(alg).partition(
            &keys, &rids, &hist, &Span::cpu(0), &Span::cpu(1 << 40), &pass, &hw,
        );
        prop_assert_eq!(out.len(), n);
        let mut seen = std::collections::HashMap::new();
        for p in 0..out.fanout() {
            let (ks, rs) = out.partition(p);
            for (&k, &r) in ks.iter().zip(rs) {
                prop_assert_eq!(radix(multiply_shift(k), skip, bits), p);
                *seen.entry((k, r)).or_insert(0u32) += 1;
            }
        }
        for (k, r) in keys.iter().zip(&rids) {
            prop_assert_eq!(seen.get(&(*k, *r)).copied().unwrap_or(0), 1);
        }
        // Cost sanity: the input was read exactly once.
        prop_assert_eq!(cost.link.seq_read.0, n as u64 * 16);
    }

    /// The interleave pattern never exceeds its GPU page budget and its
    /// prefix counting matches enumeration.
    #[test]
    fn interleave_budget_and_counting(gpu in 0u64..500, total in 1u64..500, n in 0u64..2000) {
        let pat = InterleavePattern::from_budget(gpu, total);
        prop_assert!(pat.gpu_pages_among(total) <= gpu.min(total));
        let exact = (0..n).filter(|&p| pat.side_of_page(p) == MemSide::Gpu).count() as u64;
        prop_assert_eq!(pat.gpu_pages_among(n), exact);
    }

    /// Linear-probe tables find every inserted key and report honest
    /// access counts (>= 1, bounded by capacity).
    #[test]
    fn linear_probe_roundtrip(keys in prop::collection::hash_set(1u64..1_000_000, 1..300)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let rids: Vec<u64> = keys.iter().map(|k| k ^ 0xABCD).collect();
        let (t, _) = LinearProbeTable::build(&keys, &rids, 0.5);
        for &k in &keys {
            let (hit, acc, _) = t.probe(k);
            prop_assert_eq!(hit, Some(k ^ 0xABCD));
            prop_assert!(acc >= 1 && (acc as usize) <= t.capacity());
        }
    }

    /// Bucket-chain tables enumerate exactly the matching duplicates.
    #[test]
    fn bucket_chain_duplicates(dups in 1usize..20, key in 1u64..1000, skip in 0u32..12) {
        let keys: Vec<u64> = std::iter::repeat_n(key, dups).chain([key + 1]).collect();
        let rids: Vec<u64> = (0..keys.len() as u64).collect();
        let t = BucketChainTable::build(&keys, &rids, 64, skip);
        prop_assert_eq!(t.probe_all(key).count(), dups);
        prop_assert_eq!(t.probe_all(key + 2).count(), 0);
    }

    /// The LCG is a bijection over its range for any seed.
    #[test]
    fn lcg_bijective(k in 4u32..14, seed: u64) {
        let mut lcg = Lcg::new(k, seed);
        let mut seen = vec![false; 1usize << k];
        for _ in 0..(1u64 << k) {
            let v = lcg.next_value() as usize;
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
    }

    /// Link wire costs are monotone in the payload and never cheaper
    /// than the payload itself.
    #[test]
    fn wire_cost_monotone(len_a in 1u64..4096, len_b in 1u64..4096, offset in 0u64..512) {
        let link = LinkModel::new(&HwConfig::ac922().link);
        let (lo, hi) = (len_a.min(len_b), len_a.max(len_b));
        let w_lo = link.write_at(offset, lo);
        let w_hi = link.write_at(offset, hi);
        prop_assert!(w_hi.wire_data_dir.0 >= w_lo.wire_data_dir.0);
        prop_assert!(w_lo.wire_data_dir.0 >= lo);
        let r = link.read_at(offset, lo);
        prop_assert!(r.wire_data_dir.0 >= lo);
        prop_assert!(r.transactions >= 1);
    }

    /// Random-access bandwidth never exceeds the sequential ceiling.
    #[test]
    fn random_bw_below_sequential(g_exp in 2u32..10) {
        let link = LinkModel::new(&HwConfig::ac922().link);
        let g = Bytes(1 << g_exp);
        let seq = link.effective_seq_bw();
        for dir in [Dir::CpuToGpu, Dir::GpuToCpu] {
            for a in [Alignment::Natural, Alignment::Cacheline, Alignment::None] {
                prop_assert!(link.random_access_bandwidth(g, dir, a) <= seq * 1.001);
            }
        }
    }

    /// A TLB working set within the L2 coverage eventually stops missing;
    /// stats always balance.
    #[test]
    fn tlb_stats_balance(addrs in prop::collection::vec(0u64..(1u64 << 22), 1..500)) {
        let hw = HwConfig::ac922().scaled(4096);
        let mut tlb = TlbSim::new(&hw);
        for &a in &addrs {
            tlb.translate(a, MemSide::Cpu);
        }
        let s = tlb.stats();
        prop_assert_eq!(s.lookups(), addrs.len() as u64);
        prop_assert!(s.serialized_walks <= s.full_misses);
    }

    /// The Triton join equals the reference join on arbitrary small
    /// workloads and scales.
    #[test]
    fn triton_matches_reference(m in 1u64..20, k_idx in 0usize..3, seed in 0u64..100) {
        let k = [512u64, 2048, 8192][k_idx];
        let hw = HwConfig::ac922().scaled(4096);
        let mut spec = WorkloadSpec::paper_default(m, k);
        spec.seed = seed;
        let w = spec.generate();
        let rep = TritonJoin::default().run(&w, &hw);
        prop_assert_eq!(rep.result, reference_join(&w));
    }
}
