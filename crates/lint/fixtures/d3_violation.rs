// Fixture: unmanaged threading.
pub fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
    rayon::scope(|_| {});
}
