//! Fig 1: the headline scaling experiment (perfect hashing only).
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig13::print_headline(&hw, &triton_bench::figs::SCALING_AXIS);
}
