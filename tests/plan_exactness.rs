//! Plan exactness and replay pins: every generated TPC-H-shaped plan's
//! output must equal the composed reference oracle — across seeds, skew
//! exponents, and both placement modes — and plan traces must be
//! byte-identical across repeated runs.

use triton_core::{phase_key, record_report, BloomFilter};
use triton_datagen::{TpchQuery, TpchSpec};
use triton_hw::HwConfig;
use triton_plan::{plan_for, record_plan, reference_plan, tpch_query, PlanNode, PlanRun};
use triton_trace::{to_chrome_json, validate_chrome, Trace};

const K: u64 = 2048;
const THETAS: [f64; 3] = [0.5, 1.0, 1.5];
const SEEDS: [u64; 3] = [1, 0xBEEF, 0x0712_1701];

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

fn specs() -> Vec<TpchSpec> {
    let mut out = Vec::new();
    for theta in THETAS {
        for seed in SEEDS {
            for query in [TpchQuery::Q3, TpchQuery::Q9] {
                let mut spec = match query {
                    TpchQuery::Q3 => TpchSpec::q3(4, K),
                    TpchQuery::Q9 => TpchSpec::q9(4, K),
                };
                spec.zipf_theta = theta;
                spec.seed = seed;
                out.push(spec);
            }
        }
    }
    out
}

#[test]
fn every_plan_matches_the_composed_oracle() {
    let hw = hw();
    for spec in specs() {
        let w = spec.generate();
        let expect = {
            let q = tpch_query(&w);
            reference_plan(q.plan(), q.inputs())
        };
        assert!(expect.groups > 0, "degenerate workload {spec:?}");
        for force_materialize in [false, true] {
            let mut q = tpch_query(&w);
            q.force_materialize = force_materialize;
            let run = q.run(&hw).unwrap();
            assert_eq!(
                run.agg, expect,
                "{:?} θ={} seed={:#x} fm={force_materialize}",
                spec.query, spec.zipf_theta, spec.seed
            );
        }
    }
}

#[test]
fn pipelined_and_materialized_runs_agree_and_pipelining_wins() {
    let hw = hw();
    for query in [TpchQuery::Q3, TpchQuery::Q9] {
        let spec = match query {
            TpchQuery::Q3 => TpchSpec::q3(4, K),
            TpchQuery::Q9 => TpchSpec::q9(4, K),
        };
        let w = spec.generate();
        let piped = tpch_query(&w).run(&hw).unwrap();
        let mut q = tpch_query(&w);
        q.force_materialize = true;
        let mat = q.run(&hw).unwrap();
        assert_eq!(piped.agg, mat.agg);
        let (resident, _) = piped.edge_counts();
        assert!(resident > 0, "{query:?}: nothing pipelined at this scale");
        assert!(
            piped.report.total.0 < mat.report.total.0,
            "{query:?}: pipelined {} not faster than materialized {}",
            piped.report.total,
            mat.report.total
        );
        // Materialized mode pays explicit evict phases.
        assert!(mat.materialize_time().0 > 0.0);
    }
}

fn record_full(run: &PlanRun, hw: &HwConfig) -> String {
    let mut trace = Trace::new();
    let end = record_report(&mut trace, 7, 1, 0.0, 1.0, &run.report, hw);
    record_plan(&mut trace, 7, 2, 0.0, 1.0, run);
    assert!(end > 0.0);
    let json = to_chrome_json(&trace);
    validate_chrome(&json).unwrap();
    json
}

#[test]
fn replay_pin_traces_are_byte_identical() {
    let hw = hw();
    for query in [TpchQuery::Q3, TpchQuery::Q9] {
        let spec = match query {
            TpchQuery::Q3 => TpchSpec::q3(4, K),
            TpchQuery::Q9 => TpchSpec::q9(4, K),
        };
        let w = spec.generate();
        let a = record_full(&tpch_query(&w).run(&hw).unwrap(), &hw);
        let b = record_full(&tpch_query(&w).run(&hw).unwrap(), &hw);
        assert_eq!(a, b, "{query:?}: same-seed traces must replay exactly");
        assert!(!a.is_empty());
    }
}

#[test]
fn estimates_are_upper_bounds_across_the_sweep() {
    let hw = hw();
    for spec in specs() {
        let w = spec.generate();
        let run = tpch_query(&w).run(&hw).unwrap();
        for (n, est) in run.nodes.iter().zip(&run.footprint.est_out) {
            if n.kind == "agg" {
                continue;
            }
            assert!(
                n.output_tuples <= *est,
                "{:?} θ={} seed={:#x} {}: actual {} > estimate {}",
                spec.query,
                spec.zipf_theta,
                spec.seed,
                n.label,
                n.output_tuples,
                est
            );
        }
    }
}

#[test]
fn bloom_floor_is_charged_against_the_footprint() {
    // Satellite: the Bloom node's filter bits count against the
    // admission reservation instead of being free.
    let hw = hw();
    let w = TpchSpec::q3(4, K).generate();
    let q = tpch_query(&w);
    let fp = q.footprint(&hw, hw.gpu.mem_capacity.0);
    let plan = plan_for(TpchQuery::Q3);
    let bloom_idx = plan
        .nodes
        .iter()
        .position(|n| matches!(n, PlanNode::Bloom { .. }))
        .unwrap();
    let PlanNode::Bloom { build, .. } = plan.nodes[bloom_idx] else {
        unreachable!()
    };
    let expect = BloomFilter::build_side_bytes(fp.est_out[build] as usize);
    assert!(expect > 0);
    assert_eq!(fp.floors[bloom_idx], expect);
}

#[test]
fn plan_phase_names_roll_up_cleanly() {
    // Every phase a plan emits normalises to a stable rollup key,
    // including the new Materialize and the aggregation phases.
    let hw = hw();
    let w = TpchSpec::q3(4, K).generate();
    let mut q = tpch_query(&w);
    q.force_materialize = true;
    let run = q.run(&hw).unwrap();
    let keys: Vec<String> = run
        .report
        .phases
        .iter()
        .map(|p| phase_key(&p.name))
        .collect();
    for expected in [
        "select",
        "bloom",
        "ps_1",
        "part_1",
        "join",
        "aggregate",
        "materialize",
    ] {
        assert!(
            keys.iter().any(|k| k == expected),
            "missing rollup key {expected}: {keys:?}"
        );
    }
}
