//! Fig 19: scaling the GPU memory cache size.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig19::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
