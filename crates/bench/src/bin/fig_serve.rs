//! Sustained-load serving trajectory with telemetry and SLO accounting.
//!
//! Usage: `fig_serve [--check] [--out PATH]`
//!
//! Prints the trajectory table, writes the machine-readable rows to
//! `PATH` (default `BENCH_serve.json`), and with `--check` exits
//! non-zero unless every committed invariant holds: outcomes cover
//! submissions, the registry's counters reconcile with the scheduler
//! metrics, windowed rollups reconcile with run totals, and the text
//! and JSON expositions replay byte-identically (clean and chaos).

use triton_bench::figs::fig_serve;

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let hw = triton_bench::hw();
    let rows = fig_serve::print(&hw);
    let json = fig_serve::to_json(&hw, &rows);
    std::fs::write(&out, &json).expect("write trajectory JSON");
    println!("wrote {out}");

    if check {
        if let Err(e) = fig_serve::check(&hw, &rows) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        if !fig_serve::replay_identical(&hw) {
            eprintln!("FAIL: telemetry exposition diverged across same-seed replays");
            std::process::exit(1);
        }
        println!("check ok: trajectory invariants hold, expositions replay byte-identically");
    }
}
