//! Admission bursts: elastic vs fixed memory grants.
//!
//! Usage: `fig_elastic [--check] [--out PATH]`
//!
//! Prints the sweep table, writes the machine-readable sweep to `PATH`
//! (default `BENCH_elastic.json`), and with `--check` exits non-zero
//! unless the elastic policy sheds no queries, the fixed policy sheds at
//! least one somewhere on the axis, and every completed result matched
//! the reference join.

use triton_bench::figs::fig_elastic;

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_elastic.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let hw = triton_bench::hw();
    let m = fig_elastic::DEFAULT_M_TUPLES;
    let rows = fig_elastic::print(&hw, m);
    let json = fig_elastic::to_json(&hw, m, &rows);
    std::fs::write(&out, &json).expect("write sweep JSON");
    println!("wrote {out}");

    if check {
        let (elastic_shed, fixed_shed, exact) = fig_elastic::shed_totals(&rows);
        if !exact {
            eprintln!("FAIL: a completed result diverged from the reference join");
            std::process::exit(1);
        }
        if elastic_shed > 0 || fixed_shed == 0 {
            eprintln!(
                "FAIL: shed totals elastic {elastic_shed} / fixed {fixed_shed} \
                 (want elastic 0 and fixed >= 1)"
            );
            std::process::exit(1);
        }
        println!("check ok: elastic shed {elastic_shed} <= fixed shed {fixed_shed}, exact results");
    }
}
