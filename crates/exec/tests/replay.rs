//! Replay-determinism regression tests.
//!
//! The serving runtime promises byte-identical replay: the same set of
//! queries and the same fault plan must reproduce the same metrics, and
//! — after the move from hashed to ordered containers — that promise
//! must hold regardless of the order queries were *submitted* in.
//! Submission order assigns ids, but execution order is decided by
//! arrival time alone, so any permutation of the submission batch with
//! distinct arrival times is the same serving run.

use triton_datagen::WorkloadSpec;
use triton_exec::{to_chrome_json, FaultPlan, JoinQuery, Scheduler, SchedulerConfig};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

/// The batch in canonical arrival order: distinct arrival times, mixed
/// priorities, and a shared build key so the build cache participates.
fn batch() -> Vec<JoinQuery> {
    (0..6)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(32, 512);
            spec.seed ^= i as u64;
            let mut q = JoinQuery::new(format!("r{i}"), spec.generate(), Ns(i as f64 * 1e5));
            q.priority = 1 + (i % 3) as u32;
            if i % 2 == 0 {
                q.build_key = Some(7);
            }
            q
        })
        .collect()
}

/// `batch()` submitted in a fixed scrambled order. Ids differ; the
/// serving timeline must not.
fn shuffled_batch() -> Vec<JoinQuery> {
    let qs = batch();
    [3usize, 0, 5, 1, 4, 2]
        .iter()
        .map(|&i| qs[i].clone())
        .collect()
}

#[test]
fn metrics_json_identical_under_shuffled_submission() {
    let hw = HwConfig::ac922().scaled(512);
    let a = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(batch());
    let b = Scheduler::new(hw, SchedulerConfig::default()).run(shuffled_batch());
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "submission order leaked into the serving metrics"
    );
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn faulted_replay_is_byte_identical() {
    // The fault path exercises the revocation/quarantine machinery that
    // used to iterate hashed containers. (Kernel-fault victims are picked
    // by submission-order id, so this replay holds the order fixed and
    // asserts run-to-run stability instead.)
    let hw = HwConfig::ac922().scaled(512);
    let clean = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(batch());
    let mid = Ns(clean.metrics.makespan.0 * 0.4);
    let plan = FaultPlan::with_seed(11).kernel_fault(mid);
    let a = Scheduler::new(hw.clone(), SchedulerConfig::default()).run_with_faults(batch(), &plan);
    let b = Scheduler::new(hw, SchedulerConfig::default()).run_with_faults(batch(), &plan);
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "faulted replay must be deterministic"
    );
}

#[test]
fn repeated_runs_are_byte_identical() {
    let hw = HwConfig::ac922().scaled(512);
    let a = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(batch());
    let b = Scheduler::new(hw, SchedulerConfig::default()).run(batch());
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}

#[test]
fn clean_trace_is_byte_identical_across_replays() {
    // The trace carries every span and instant of the run on the
    // simulated clock; same batch, same machine → the serialized Chrome
    // JSON must match byte for byte.
    let hw = HwConfig::ac922().scaled(512);
    let a = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(batch());
    let b = Scheduler::new(hw, SchedulerConfig::default()).run(batch());
    let ja = to_chrome_json(&a.trace);
    let jb = to_chrome_json(&b.trace);
    assert!(!ja.is_empty() && !a.trace.is_empty());
    assert_eq!(ja, jb, "trace replay must be byte-identical");
}

#[test]
fn faulted_trace_is_byte_identical_across_replays() {
    // Fault instants, retries, downgrades, and flight-recorder dumps all
    // enter the trace; the same seeded plan must replay them exactly.
    let hw = HwConfig::ac922().scaled(512);
    let clean = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(batch());
    let mid = Ns(clean.metrics.makespan.0 * 0.4);
    let plan = FaultPlan::with_seed(11).kernel_fault(mid);
    let a = Scheduler::new(hw.clone(), SchedulerConfig::default()).run_with_faults(batch(), &plan);
    let b = Scheduler::new(hw, SchedulerConfig::default()).run_with_faults(batch(), &plan);
    let ja = to_chrome_json(&a.trace);
    let jb = to_chrome_json(&b.trace);
    assert!(ja.contains("kernel-fault"), "the fault must be traced");
    assert!(ja.contains("flight.dump"), "the fault must dump the ring");
    assert_eq!(ja, jb, "faulted trace replay must be byte-identical");
}
