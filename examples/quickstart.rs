//! Quickstart: run the Triton join on a paper-style workload and inspect
//! the result and the per-kernel profile.
//!
//! ```text
//! cargo run --release --example quickstart -p triton-core
//! ```

use triton_core::{reference_join, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::{HwConfig, Ns, Timeline};

fn main() {
    // The paper's machine (IBM AC922: POWER9 + V100 over NVLink 2.0),
    // with capacities scaled down 512x so the experiment runs anywhere.
    // Scaling capacities and data by the same factor preserves
    // throughput; see DESIGN.md.
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);

    // |R| = |S| = 512 M tuples at paper scale: 16 GiB of 16-byte
    // <key, record-id> tuples, more than the (modeled) 16 GiB GPU memory
    // once the partitioned copy is counted.
    let workload = WorkloadSpec::paper_default(512, k).generate();
    println!(
        "workload: |R| = |S| = {} actual tuples ({} M modeled)",
        workload.r.len(),
        workload.spec.r_tuples_modeled / 1_000_000
    );

    let report = TritonJoin::default().run(&workload, &hw);

    // The join is functional: verify it against a reference hash join.
    assert_eq!(report.result, reference_join(&workload));
    println!(
        "result: {} matches, checksum {:#x} (verified against reference)",
        report.result.matches, report.result.checksum
    );

    println!(
        "\nthroughput: {:.2} G tuples/s  (total {})",
        report.throughput_gtps(),
        report.total
    );
    println!(
        "interconnect utilisation: {:.1}%",
        report.link_utilization(&hw) * 100.0
    );
    println!(
        "IOMMU requests/tuple: {:.2e}",
        report.iommu_requests_per_tuple(&hw)
    );

    println!("\nper-kernel breakdown:");
    for (name, share) in report.time_breakdown() {
        println!("  {name:8} {:5.1}%", share * 100.0);
    }

    // Sketch the concurrent-kernel pipeline (the paper's Fig 11): the
    // second pass of pair i+1 overlaps the join of pair i on disjoint SM
    // halves.
    let t = |name: &str| {
        report
            .phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.time)
            .unwrap_or(Ns::ZERO)
    };
    let setup = t("PS 1") + t("Part 1");
    let stage_a = t("PS 2") + t("Part 2") + t("Part 3") + t("Sched");
    let mut tl = Timeline::new();
    tl.lane("SMs 0-39")
        .seg("PS1+Part1", Ns::ZERO, setup)
        .seg("PS2+Part2", setup, stage_a);
    tl.lane("SMs 40-79")
        .seg("Join", setup + stage_a * 0.15, t("Join"));
    println!("\nconcurrent-kernel pipeline (Fig 11):");
    print!("{}", tl.render(56));
}
