//! Join execution reports: per-kernel timing, profiling counters, and the
//! derived metrics every figure of the evaluation reads.

use triton_hw::kernel::{KernelCost, KernelTiming, StallProfile};
use triton_hw::power::{efficiency_mtps_per_w, Executor};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;

/// One executed kernel (or CPU phase) of a join.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (the paper's kernel labels: "PS 1", "Part 1", ...).
    pub name: String,
    /// Wall time contributed to the critical path.
    pub time: Ns,
    /// Timing decomposition (GPU kernels only).
    pub timing: Option<KernelTiming>,
    /// Resource counters (GPU kernels only).
    pub cost: Option<KernelCost>,
    /// Stall attribution (GPU kernels only).
    pub stalls: Option<StallProfile>,
}

impl PhaseReport {
    /// A GPU kernel phase: derives timing and stalls from the cost.
    pub fn gpu(cost: KernelCost, hw: &HwConfig) -> Self {
        let timing = cost.timing(hw);
        let stalls = StallProfile::from_timing(&cost, &timing, hw);
        PhaseReport {
            name: cost.name.clone(),
            time: timing.total,
            timing: Some(timing),
            cost: Some(cost),
            stalls: Some(stalls),
        }
    }

    /// A CPU phase with a precomputed time.
    pub fn cpu(name: impl Into<String>, time: Ns) -> Self {
        PhaseReport {
            name: name.into(),
            time,
            timing: None,
            cost: None,
            stalls: None,
        }
    }
}

/// Functional result of a join: verifiable against a reference join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinResult {
    /// Number of matching tuple pairs.
    pub matches: u64,
    /// Checksum: wrapping sum of `r_rid + s_rid` over all matches.
    pub checksum: u64,
}

impl JoinResult {
    /// Fold one match into the result.
    #[inline]
    pub fn add(&mut self, r_rid: u64, s_rid: u64) {
        self.matches += 1;
        self.checksum = self.checksum.wrapping_add(r_rid.wrapping_add(s_rid));
    }

    /// Empty result.
    pub fn empty() -> Self {
        JoinResult {
            matches: 0,
            checksum: 0,
        }
    }

    /// Merge a partial result.
    pub fn merge(&mut self, o: &JoinResult) {
        self.matches += o.matches;
        self.checksum = self.checksum.wrapping_add(o.checksum);
    }
}

/// Per-pair stage times of a Section 5.2 concurrent-kernel pipeline:
/// stage A (second pass) of pair *i+1* overlaps stage B (join) of pair
/// *i* on disjoint SM halves. Carried on the [`JoinReport`] so tracing
/// can draw the overlap as two lanes instead of inferring it from the
/// pipelined total.
#[derive(Debug, Clone, Default)]
pub struct OverlapLanes {
    /// Per-pair stage A (second pass + sched) times, in pair order.
    pub stage_a: Vec<Ns>,
    /// Per-pair stage B (join) times, in pair order.
    pub stage_b: Vec<Ns>,
    /// Execution order chosen by the scheduler: `order[k]` is the lane
    /// index of the pair fed through the pipeline k-th. Empty means
    /// submission (index) order — the pre-skew-aware behavior.
    pub order: Vec<usize>,
}

impl OverlapLanes {
    /// The effective execution order: the recorded permutation, or the
    /// identity when none was recorded (or it is malformed).
    pub fn execution_order(&self) -> Vec<usize> {
        let n = self.stage_a.len().min(self.stage_b.len());
        if self.order.len() == n {
            let mut seen = vec![false; n];
            let valid = self.order.iter().all(|&i| {
                let ok = i < n && !seen[i];
                if i < n {
                    seen[i] = true;
                }
                ok
            });
            if valid {
                return self.order.clone();
            }
        }
        (0..n).collect()
    }

    /// Start offsets `(a_start, b_start)` of each pair relative to the
    /// pipeline's begin, under the barrier semantics of
    /// [`triton_hw::kernel::pipeline2`]: A of the next scheduled pair and
    /// B of the current one launch together, and the next barrier waits
    /// for both. Indexed by *lane* (pair), not by schedule position.
    pub fn schedule(&self) -> Vec<(Ns, Ns)> {
        let order = self.execution_order();
        let n = order.len();
        if n == 0 {
            return Vec::new();
        }
        let mut a_start = vec![Ns::ZERO; n];
        let mut b_start = vec![Ns::ZERO; n];
        let mut barrier = self.stage_a[order[0]];
        for k in 1..n {
            a_start[order[k]] = barrier;
            b_start[order[k - 1]] = barrier;
            barrier += self.stage_a[order[k]].max(self.stage_b[order[k - 1]]);
        }
        b_start[order[n - 1]] = barrier;
        a_start.into_iter().zip(b_start).collect()
    }

    /// End-to-end pipeline time implied by the schedule; equals
    /// [`triton_hw::kernel::pipeline2_scheduled`] over the same stages
    /// and order ([`triton_hw::kernel::pipeline2`] when no order is
    /// recorded).
    pub fn total(&self) -> Ns {
        let order = self.execution_order();
        match order.last() {
            Some(&last) => self.schedule()[last].1 + self.stage_b[last],
            None => Ns::ZERO,
        }
    }
}

/// Cache placement decision for one partition pair of a hybrid join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairPlacement {
    /// Pass-1 partition index of the pair.
    pub part: u64,
    /// Combined pair payload (R + S) in bytes.
    pub bytes: u64,
    /// Bytes of the pair resident in GPU memory.
    pub gpu_bytes: u64,
    /// Whether the planner pinned the whole pair GPU-resident.
    pub cached: bool,
}

/// How a join placed its partitioned working set across GPU and CPU
/// memory — the observable outcome of the cache policy, per pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementReport {
    /// Placement policy label (`"interleaved"`, `"prefix"`, `"planned"`).
    pub policy: String,
    /// GPU cache budget the policy distributed, in bytes.
    pub cache_budget_bytes: u64,
    /// Working-set bytes resident in GPU memory (cache hits at read
    /// time).
    pub cache_hit_bytes: u64,
    /// Working-set bytes spilled to CPU memory.
    pub spilled_bytes: u64,
    /// Per-pair decisions, in pass-1 partition order (non-empty pairs).
    pub pairs: Vec<PairPlacement>,
}

impl PlacementReport {
    /// Number of pairs pinned whole.
    pub fn pairs_cached(&self) -> u64 {
        self.pairs.iter().filter(|p| p.cached).count() as u64
    }
}

/// Complete report of one join execution.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Operator name ("GPU Triton Join", "CPU Radix Join (POWER9)", ...).
    pub name: String,
    /// Phases in execution order. Phase times reflect each kernel in
    /// isolation; `total` accounts for pipeline overlap.
    pub phases: Vec<PhaseReport>,
    /// End-to-end critical-path time.
    pub total: Ns,
    /// Actual tuples processed (|R| + |S| at simulation scale).
    pub tuples_actual: u64,
    /// Modeled tuples (|R| + |S| at paper scale).
    pub tuples_modeled: u64,
    /// Functional join result.
    pub result: JoinResult,
    /// Which processor ran the join (for the power model).
    pub executor: Executor,
    /// Per-pair stage lanes when the operator ran its stages as
    /// concurrent kernels on split SM halves (`None` for serial
    /// operators and ablations).
    pub overlap: Option<OverlapLanes>,
    /// Cache placement decisions of hybrid-caching operators (`None` for
    /// operators without a GPU-cached working set).
    pub placement: Option<PlacementReport>,
}

impl JoinReport {
    /// Join throughput in G tuples/s, the paper's headline metric:
    /// `(|R| + |S|) / runtime`. Computed over *actual* tuples and modeled
    /// time, which the capacity-scaling argument makes directly comparable
    /// to the paper's absolute numbers.
    pub fn throughput_gtps(&self) -> f64 {
        if self.total.0 <= 0.0 {
            return 0.0;
        }
        self.tuples_actual as f64 / self.total.as_secs() / 1e9
    }

    /// Power efficiency in M tuples/s/W (Fig 23).
    pub fn power_efficiency(&self, hw: &HwConfig) -> f64 {
        efficiency_mtps_per_w(&hw.power, self.executor, self.throughput_gtps() * 1e9)
    }

    /// Sum of IOMMU page-table walks across all phases.
    pub fn iommu_walks(&self) -> u64 {
        self.phases
            .iter()
            .filter_map(|p| p.cost.as_ref())
            .map(|c| c.tlb.full_misses)
            .sum()
    }

    /// IOMMU translation *requests* per tuple (Fig 14b): walks times the
    /// multi-level request amplification of the POWER9 counter.
    pub fn iommu_requests_per_tuple(&self, hw: &HwConfig) -> f64 {
        self.iommu_walks() as f64 * hw.tlb.requests_per_walk / self.tuples_actual.max(1) as f64
    }

    /// Interconnect utilisation over the whole join: wire time of the
    /// busier direction divided by total time (Fig 14a).
    pub fn link_utilization(&self, hw: &HwConfig) -> f64 {
        let link = triton_hw::LinkModel::new(&hw.link);
        let mut up = Bytes(0);
        let mut down = Bytes(0);
        for p in &self.phases {
            if let Some(c) = &p.cost {
                up += c.link.wire_cpu_to_gpu(&link);
                down += c.link.wire_gpu_to_cpu(&link);
            }
        }
        let busy = up.0.max(down.0) as f64;
        (busy / hw.link.raw_bw_per_dir.0 / self.total.as_secs()).min(1.0)
    }

    /// Group phase times by the paper's Fig 15 kernel categories,
    /// returning `(label, fraction of total)` pairs.
    pub fn time_breakdown(&self) -> Vec<(String, f64)> {
        let mut groups: Vec<(String, f64)> = Vec::new();
        let sum: f64 = self.phases.iter().map(|p| p.time.0).sum();
        for p in &self.phases {
            let frac = if sum > 0.0 { p.time.0 / sum } else { 0.0 };
            if let Some(g) = groups.iter_mut().find(|(n, _)| *n == p.name) {
                g.1 += frac;
            } else {
                groups.push((p.name.clone(), frac));
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_schedule_matches_pipeline2() {
        let lanes = OverlapLanes {
            stage_a: vec![Ns(10.0), Ns(20.0), Ns(5.0)],
            stage_b: vec![Ns(15.0), Ns(8.0), Ns(30.0)],
            order: vec![],
        };
        let sched = lanes.schedule();
        assert_eq!(sched.len(), 3);
        // A0 at 0; A1 and B0 launch together at the first barrier.
        assert_eq!(sched[0].0, Ns::ZERO);
        assert_eq!(sched[1].0, Ns(10.0));
        assert_eq!(sched[0].1, Ns(10.0));
        // Next barrier waits for max(A1, B0) = 20.
        assert_eq!(sched[2].0, Ns(30.0));
        assert_eq!(sched[1].1, Ns(30.0));
        // Last join starts after max(A2, B1) and runs to the end.
        assert_eq!(sched[2].1, Ns(38.0));
        let expected = triton_hw::kernel::pipeline2(&lanes.stage_a, &lanes.stage_b);
        assert!((lanes.total().0 - expected.0).abs() < 1e-12);
        assert!(OverlapLanes::default().schedule().is_empty());
        assert_eq!(OverlapLanes::default().total(), Ns::ZERO);
    }

    #[test]
    fn ordered_schedule_matches_pipeline2_scheduled() {
        let lanes = OverlapLanes {
            stage_a: vec![Ns(10.0), Ns(1.0)],
            stage_b: vec![Ns(1.0), Ns(10.0)],
            order: vec![1, 0],
        };
        let expected =
            triton_hw::kernel::pipeline2_scheduled(&lanes.stage_a, &lanes.stage_b, &[1, 0]);
        assert!((lanes.total().0 - expected.0).abs() < 1e-12);
        assert_eq!(lanes.total(), Ns(12.0));
        // Pair 1 runs first: its A starts at 0; pair 0's A at the first
        // barrier, its B last.
        let sched = lanes.schedule();
        assert_eq!(sched[1].0, Ns::ZERO);
        assert_eq!(sched[0].0, Ns(1.0));
        assert_eq!(sched[0].1, Ns(11.0));
        // A malformed order falls back to submission order.
        let bad = OverlapLanes {
            order: vec![1, 1],
            ..lanes.clone()
        };
        assert_eq!(bad.execution_order(), vec![0, 1]);
    }

    #[test]
    fn placement_report_counts_cached_pairs() {
        let p = PlacementReport {
            policy: "planned".into(),
            cache_budget_bytes: 1024,
            cache_hit_bytes: 700,
            spilled_bytes: 300,
            pairs: vec![
                PairPlacement {
                    part: 0,
                    bytes: 700,
                    gpu_bytes: 700,
                    cached: true,
                },
                PairPlacement {
                    part: 3,
                    bytes: 300,
                    gpu_bytes: 0,
                    cached: false,
                },
            ],
        };
        assert_eq!(p.pairs_cached(), 1);
    }

    #[test]
    fn join_result_checksum_is_order_independent() {
        let mut a = JoinResult::empty();
        a.add(1, 2);
        a.add(3, 4);
        let mut b = JoinResult::empty();
        b.add(3, 4);
        b.add(1, 2);
        assert_eq!(a, b);
        assert_eq!(a.matches, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JoinResult::empty();
        a.add(1, 1);
        let mut b = JoinResult::empty();
        b.add(2, 2);
        a.merge(&b);
        assert_eq!(a.matches, 2);
        assert_eq!(a.checksum, 6);
    }

    #[test]
    fn throughput_math() {
        let r = JoinReport {
            name: "x".into(),
            phases: vec![],
            total: Ns::secs(2.0),
            tuples_actual: 4_000_000_000,
            tuples_modeled: 4_000_000_000,
            result: JoinResult::empty(),
            executor: Executor::Gpu,
            overlap: None,
            placement: None,
        };
        assert!((r.throughput_gtps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let r = JoinReport {
            name: "x".into(),
            phases: vec![
                PhaseReport::cpu("a", Ns(30.0)),
                PhaseReport::cpu("b", Ns(60.0)),
                PhaseReport::cpu("a", Ns(10.0)),
            ],
            total: Ns(100.0),
            tuples_actual: 1,
            tuples_modeled: 1,
            result: JoinResult::empty(),
            executor: Executor::Cpu,
            overlap: None,
            placement: None,
        };
        let bd = r.time_breakdown();
        assert_eq!(bd.len(), 2);
        let sum: f64 = bd.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((bd[0].1 - 0.4).abs() < 1e-12);
    }
}
