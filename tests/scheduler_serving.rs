//! Integration tests of the multi-query serving runtime (`triton-exec`):
//! memory-budget admission, concurrent-vs-serial throughput, typed
//! shedding, and build-side sharing — with join results cross-checked
//! against the reference join.

use triton_core::{reference_join, CpuRadixJoin, HashScheme};
use triton_datagen::WorkloadSpec;
use triton_exec::{JoinQuery, Operator, Outcome, RejectReason, Scheduler, SchedulerConfig};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

const K: u64 = 512;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// A batch of independent tenants arriving together.
fn tenants(n: usize, m_tuples: u64) -> Vec<JoinQuery> {
    (0..n)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(m_tuples, K);
            spec.seed ^= (i as u64) << 32;
            JoinQuery::new(format!("tenant-{i}"), spec.generate(), Ns::ZERO)
        })
        .collect()
}

#[test]
fn concurrent_queries_respect_the_memory_budget() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(6, 32));
    assert_eq!(res.metrics.completed, 6, "all tenants must complete");
    assert!(
        res.metrics.peak_concurrency >= 4,
        "expected at least 4 queries in flight, saw {}",
        res.metrics.peak_concurrency
    );
    assert!(
        res.metrics.peak_gpu_reserved <= res.metrics.gpu_capacity,
        "reservations oversubscribed the GPU: {} > {}",
        res.metrics.peak_gpu_reserved,
        res.metrics.gpu_capacity
    );
    // Every admitted query held a real reservation.
    for o in &res.outcomes {
        let c = o.completed().expect("completed");
        assert!(c.reserved.0 > 0, "{} ran without a reservation", c.name);
        assert!(c.finish.0 >= c.start.0);
    }
    // Placement reports roll up: the Triton queries held working-set
    // bytes GPU-resident, and the rollup is consistent with per-query
    // placements.
    let per_query: u64 = res
        .outcomes
        .iter()
        .filter_map(|o| o.completed())
        .filter_map(|c| c.report.placement.as_ref())
        .map(|p| p.cache_hit_bytes)
        .sum();
    assert!(per_query > 0, "expected cached working-set bytes");
    assert_eq!(res.metrics.cache_hit_bytes.0, per_query);
}

#[test]
fn concurrent_throughput_at_least_serial() {
    let conc = Scheduler::new(hw(), SchedulerConfig::default()).run(tenants(4, 32));
    let serial = Scheduler::new(hw(), SchedulerConfig::serial()).run(tenants(4, 32));
    assert_eq!(conc.metrics.completed, 4);
    assert_eq!(serial.metrics.completed, 4);
    assert!(
        conc.metrics.throughput_gtps >= serial.metrics.throughput_gtps * 0.9999,
        "concurrency regressed throughput: {} < {} Gtps",
        conc.metrics.throughput_gtps,
        serial.metrics.throughput_gtps
    );
    assert!(conc.metrics.makespan.0 <= serial.metrics.makespan.0 * 1.0001);
}

#[test]
fn mixed_executors_overlap_for_real_gains() {
    // A GPU-bound Triton join and a CPU radix join have disjoint
    // bottlenecks: together they must beat the serial schedule strictly.
    let mk = || {
        let mut qs = tenants(2, 32);
        qs[1].op = Operator::CpuRadix(CpuRadixJoin::power9(HashScheme::BucketChaining));
        qs
    };
    let conc = Scheduler::new(hw(), SchedulerConfig::default()).run(mk());
    let serial = Scheduler::new(hw(), SchedulerConfig::serial()).run(mk());
    assert!(
        conc.metrics.makespan.0 < serial.metrics.makespan.0 * 0.95,
        "disjoint bottlenecks should overlap: {} vs serial {}",
        conc.metrics.makespan,
        serial.metrics.makespan
    );
}

#[test]
fn results_stay_exact_under_concurrency() {
    let queries = tenants(5, 16);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference_join(&q.workload))
        .collect();
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(queries);
    for (o, exp) in res.outcomes.iter().zip(&expected) {
        let c = o.completed().expect("completed");
        assert_eq!(
            &c.report.result, exp,
            "{}'s result changed under concurrency",
            c.name
        );
    }
}

#[test]
fn over_capacity_submissions_shed_with_typed_errors() {
    // A build side whose pipeline floor exceeds the whole scaled GPU can
    // never run: the scheduler must reject it with OverCapacity (not
    // panic, not wedge the queue), while normal queries still complete.
    // At K = 2^20 the GPU holds 16 KiB; a 16 MiB input needs 32 KiB of
    // pair buffers even at the maximum pass-1 fanout.
    let tiny_hw = HwConfig::ac922().scaled(1 << 20);
    let spec_of = |tuples: u64, seed: u64| WorkloadSpec {
        r_tuples_modeled: tuples,
        s_tuples_modeled: tuples,
        scale: 1,
        payload_cols: 0,
        zipf_theta: 0.0,
        match_fraction: 1.0,
        seed,
    };
    let mut queries: Vec<JoinQuery> = (0..3)
        .map(|i| {
            JoinQuery::new(
                format!("ok-{i}"),
                spec_of(2048, 11 + i).generate(),
                Ns::ZERO,
            )
        })
        .collect();
    queries.push(JoinQuery::new(
        "whale",
        spec_of(512 * 1024, 99).generate(),
        Ns::ZERO,
    ));
    let res = Scheduler::new(tiny_hw, SchedulerConfig::default()).run(queries);
    assert_eq!(res.metrics.completed, 3);
    assert_eq!(res.metrics.rejected, 1);
    match &res.outcomes[3] {
        Outcome::Rejected {
            reason: RejectReason::OverCapacity { needed, capacity },
            name,
            ..
        } => {
            assert_eq!(name, "whale");
            assert!(needed.0 > capacity.0);
        }
        other => panic!("expected an OverCapacity rejection, got {other:?}"),
    }
}

#[test]
fn queue_limit_applies_backpressure() {
    let res = Scheduler::new(
        hw(),
        SchedulerConfig {
            max_inflight: 1,
            max_queue: 2,
            ..SchedulerConfig::default()
        },
    )
    .run(tenants(5, 16));
    let bounced = res
        .outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                Outcome::Rejected {
                    reason: RejectReason::QueueFull { limit: 2 },
                    ..
                }
            )
        })
        .count();
    assert!(bounced >= 1, "a 2-deep queue must bounce a 5-query burst");
    assert_eq!(res.metrics.completed + res.metrics.rejected, 5);
}

#[test]
fn shared_build_side_batches_probes() {
    let base = WorkloadSpec::paper_default(32, K).generate();
    let queries: Vec<JoinQuery> = (0..4)
        .map(|i| {
            let w = if i == 0 {
                base.clone()
            } else {
                JoinQuery::probe_batch(&base, 0xBEEF + i as u64)
            };
            let mut q = JoinQuery::new(format!("batch-{i}"), w, Ns::ZERO);
            q.build_key = Some(1);
            q
        })
        .collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference_join(&q.workload))
        .collect();
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(queries);
    assert_eq!(res.metrics.completed, 4);
    assert_eq!(
        res.metrics.build_cache_hits, 3,
        "three probe batches should reuse the partitioned build side"
    );
    for (o, exp) in res.outcomes.iter().zip(&expected) {
        let c = o.completed().unwrap();
        assert_eq!(&c.report.result, exp, "{} wrong under sharing", c.name);
    }
}
