//! Crate-level behavioural tests for `triton-core`: cost-model effects of
//! the join operators beyond functional correctness.

use triton_core::{
    npj_style_aggregate, reference_aggregate, reference_join, CpuRadixJoin, GpuAggregation,
    HashScheme, NoPartitioningJoin, TritonJoin,
};
use triton_datagen::WorkloadSpec;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;

fn hw(k: u64) -> HwConfig {
    HwConfig::ac922().scaled(k)
}

#[test]
fn triton_spill_grows_with_data() {
    // The spilled share (link writes in Part 1) grows once data outgrows
    // the cache, and the cached share keeps GPU memory busy.
    let hw = hw(512);
    let spilled = |m: u64| {
        let w = WorkloadSpec::paper_default(m, 512).generate();
        let rep = TritonJoin::default().run(&w, &hw);
        let part1 = rep.phases.iter().find(|p| p.name == "Part 1").unwrap();
        let c = part1.cost.as_ref().unwrap();
        let out = c.link.rand_write.payload.0 as f64;
        out / (w.total_tuples() * 16) as f64
    };
    let small = spilled(128);
    let large = spilled(2048);
    assert!(
        small < 0.05,
        "128 M should cache nearly everything: {small}"
    );
    assert!(large > 0.6, "2048 M should spill most of the copy: {large}");
}

#[test]
fn npj_probe_locality_follows_cache_budget() {
    let hw = hw(512);
    let w = WorkloadSpec::paper_default(1024, 512).generate();
    let probes_over_link = |cache: u64| {
        let npj = NoPartitioningJoin {
            cache_bytes: Some(Bytes(cache)),
            ..NoPartitioningJoin::perfect()
        };
        let rep = npj.run(&w, &hw);
        let probe = rep.phases.iter().find(|p| p.name == "Probe").unwrap();
        probe.cost.as_ref().unwrap().link.rand_read.transactions
    };
    let none = probes_over_link(0);
    let half = probes_over_link(w.r.len() as u64 * 8);
    let full = probes_over_link(u64::MAX >> 10);
    assert!(none > half && half > full, "{none} > {half} > {full}");
    assert_eq!(none, w.s.len() as u64, "no cache: every probe crosses");
}

#[test]
fn xeon_partition_phase_slower_than_power9() {
    let hw = hw(512);
    let p9 = CpuRadixJoin::power9(HashScheme::BucketChaining);
    let xeon = CpuRadixJoin::xeon(HashScheme::BucketChaining);
    let t9 = p9.partition_phase_time(1_000_000, 13, &hw);
    let tx = xeon.partition_phase_time(1_000_000, 13, &hw);
    // 13 bits force the Xeon into two passes.
    assert!(tx.0 > t9.0 * 1.5, "xeon {tx:?} vs p9 {t9:?}");
}

#[test]
fn prefix_sum_bandwidth_reflects_cpu_class() {
    let hw = hw(512);
    let p9 = CpuRadixJoin::power9(HashScheme::Perfect).prefix_sum_bandwidth(10_000_000, &hw);
    let xeon = CpuRadixJoin::xeon(HashScheme::Perfect).prefix_sum_bandwidth(10_000_000, &hw);
    assert!(p9 > xeon, "POWER9 has more memory bandwidth");
}

#[test]
fn report_metrics_are_sane() {
    let hw = hw(512);
    let w = WorkloadSpec::paper_default(512, 512).generate();
    let rep = TritonJoin::default().run(&w, &hw);
    let util = rep.link_utilization(&hw);
    assert!((0.0..=1.0).contains(&util));
    assert!(rep.power_efficiency(&hw) > 0.0);
    let shares: f64 = rep.time_breakdown().iter().map(|(_, f)| f).sum();
    assert!((shares - 1.0).abs() < 1e-9);
    assert!(
        rep.iommu_walks() < w.total_tuples(),
        "partitioned joins walk rarely"
    );
}

#[test]
fn gpu_ps_variant_reports_gpu_phase() {
    let hw = hw(512);
    let w = WorkloadSpec::paper_default(128, 512).generate();
    let cpu_ps = TritonJoin::default().run(&w, &hw);
    let gpu_ps = TritonJoin {
        gpu_prefix_sum: true,
        ..TritonJoin::default()
    }
    .run(&w, &hw);
    let ps = |r: &triton_core::JoinReport| {
        r.phases
            .iter()
            .find(|p| p.name == "PS 1")
            .unwrap()
            .cost
            .is_some()
    };
    assert!(!ps(&cpu_ps), "CPU prefix sum has no GPU kernel cost");
    assert!(ps(&gpu_ps), "GPU prefix sum is a GPU kernel");
}

#[test]
fn perfect_scheme_tracks_bucket_chaining_closely() {
    // Section 6.2.1: the hashing scheme has only a 0-2% effect on the
    // partitioned join (vs 400x on the NPJ).
    let hw = hw(512);
    for m in [256u64, 1024] {
        let w = WorkloadSpec::paper_default(m, 512).generate();
        let bc = TritonJoin::default().run(&w, &hw).throughput_gtps();
        let pf = TritonJoin {
            scheme: HashScheme::Perfect,
            ..TritonJoin::default()
        }
        .run(&w, &hw)
        .throughput_gtps();
        assert!((pf / bc - 1.0).abs() < 0.05, "{m} M: {bc} vs {pf}");
    }
}

#[test]
fn aggregation_insensitive_to_duplication_factor() {
    // More duplicates = fewer groups = smaller result writes: throughput
    // must not degrade as duplication rises.
    let hw = hw(512);
    let flat = WorkloadSpec::paper_default(512, 512).generate().s;
    let skewed = WorkloadSpec::skewed(512, 1.2, 512).generate().s;
    let (ra, rep_a) = GpuAggregation::default().run(&flat, &hw);
    let (rb, rep_b) = GpuAggregation::default().run(&skewed, &hw);
    assert_eq!(ra, reference_aggregate(&flat));
    assert_eq!(rb, reference_aggregate(&skewed));
    assert!(rep_b.throughput_gtps() > rep_a.throughput_gtps() * 0.8);
}

#[test]
fn npj_aggregate_collapses_out_of_core_like_the_join() {
    let hw = hw(512);
    let rel = WorkloadSpec::paper_default(1536, 512).generate().s;
    let (_, npj) = npj_style_aggregate(&rel, &hw);
    let (_, part) = GpuAggregation::default().run(&rel, &hw);
    assert!(
        part.total.0 * 2.0 < npj.total.0,
        "{} vs {}",
        part.total,
        npj.total
    );
}

#[test]
fn cache_zero_equals_caching_disabled() {
    let hw = hw(512);
    let w = WorkloadSpec::paper_default(512, 512).generate();
    let zero = TritonJoin {
        cache_bytes: Some(Bytes(0)),
        ..TritonJoin::default()
    }
    .run(&w, &hw);
    let off = TritonJoin {
        caching_enabled: false,
        ..TritonJoin::default()
    }
    .run(&w, &hw);
    assert_eq!(zero.result, off.result);
    let ratio = zero.total.0 / off.total.0;
    assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
}

#[test]
fn materialized_and_aggregated_joins_agree_on_matches() {
    let hw = hw(2048);
    let w = WorkloadSpec::with_ratio(32, 8, 2048).generate();
    let agg = TritonJoin::default().run(&w, &hw);
    let mat = TritonJoin {
        materialize: true,
        ..TritonJoin::default()
    }
    .run(&w, &hw);
    assert_eq!(agg.result, mat.result);
    assert_eq!(agg.result, reference_join(&w));
    // Materialization adds link writes, so it can only be slower.
    assert!(mat.total.0 >= agg.total.0);
}
