//! # triton-metrics
//!
//! Deterministic time-series telemetry for the simulated AC922 serving
//! stack. Everything here runs on the *simulated* clock and integer
//! arithmetic so that two same-seed replays — clean or chaos — expose
//! byte-identical telemetry:
//!
//! * [`Log2Histogram`] — fixed-boundary log2-bucket streaming histogram
//!   (16 linear sub-buckets per power of two, ≤ 6.25 % relative bucket
//!   width, bounded memory, no floats in bucket math);
//! * [`MetricsRegistry`] — typed counters, gauges, and histograms, each
//!   tracked as a run total plus fixed-width window deltas, with a
//!   [`MetricsRegistry::reconcile`] check that window sums equal run
//!   totals exactly;
//! * [`MetricsRegistry::expose_text`] / [`MetricsRegistry::expose_json`]
//!   — deterministic exposition formats pinned byte-for-byte by CI.
//!
//! The crate is dependency-free (like `triton-trace`) so any layer of
//! the stack can be instrumented without dependency cycles: `triton-mem`
//! reports allocator occupancy, `triton-hw` prices utilization samples,
//! `triton-exec` owns the registry and samples at scheduler decision
//! points.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hist;
pub mod registry;

pub use hist::Log2Histogram;
pub use registry::{sim_ns, Gauge, MetricsRegistry};
