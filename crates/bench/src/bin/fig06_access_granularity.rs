//! Fig 6: interconnect bandwidth vs access granularity and alignment.
fn main() {
    triton_bench::figs::fig06::print(&triton_bench::hw());
}
