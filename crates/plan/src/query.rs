//! [`PlanQuery`]: a validated plan plus its inputs, packaged for the
//! serving runtime — admission math (peak footprint, not sum), the
//! degradation knobs the resilience ladder flips, and a fallible run
//! entry point matching the single-join operators.

use triton_core::SkewPolicy;
use triton_datagen::{Relation, TUPLE_BYTES};
use triton_hw::units::Bytes;
use triton_hw::{HwConfig, MemSide};
use triton_mem::OutOfMemory;

use crate::dag::{Plan, PlanError};
use crate::exec::{execute, PlanConfig, PlanRun};
use crate::footprint::{plan_footprint, Footprint, FootprintCache};

/// A multi-operator query ready to serve: the DAG, its base relations,
/// and the execution knobs the scheduler may adjust.
#[derive(Debug, Clone)]
pub struct PlanQuery {
    plan: Plan,
    inputs: Vec<Relation>,
    /// Materialize every intermediate edge to host — the degradation
    /// ladder's first rung for plans (fidelity kept, pipelining given
    /// up), and a reservation reducer under memory pressure.
    pub force_materialize: bool,
    /// Skew policy applied to every join node.
    pub skew: SkewPolicy,
    /// Placement budget granted by admission; `None` = full capacity.
    pub budget: Option<Bytes>,
    /// Working-set cache budget granted by admission.
    pub cache_grant: Option<Bytes>,
}

impl PlanQuery {
    /// Package a validated plan over its inputs.
    pub fn new(plan: Plan, inputs: Vec<Relation>) -> Result<Self, PlanError> {
        plan.validate(inputs.len())?;
        Ok(PlanQuery {
            plan,
            inputs,
            force_materialize: false,
            skew: SkewPolicy::default(),
            budget: None,
            cache_grant: None,
        })
    }

    /// The plan DAG.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The base relations.
    pub fn inputs(&self) -> &[Relation] {
        &self.inputs
    }

    /// Total base-relation tuples.
    pub fn input_tuples(&self) -> u64 {
        self.inputs.iter().map(|r| r.len() as u64).sum()
    }

    /// Footprint analysis at `budget` bytes (the admission math).
    pub fn footprint(&self, hw: &HwConfig, budget: u64) -> Footprint {
        let tuples: Vec<u64> = self.inputs.iter().map(|r| r.len() as u64).collect();
        plan_footprint(&self.plan, &tuples, hw, budget, self.force_materialize)
    }

    /// Minimum GPU-memory reservation: the *peak* concurrent operator
    /// footprint along the schedule under full capacity — never the sum
    /// of all operators. Re-running placement at exactly this budget
    /// reproduces the same residency decisions, so the grant is tight.
    pub fn min_reserve(&self, hw: &HwConfig) -> Bytes {
        let fp = self.footprint(hw, hw.gpu.mem_capacity.0);
        Bytes(fp.peak)
    }

    /// [`Self::min_reserve`] through a caller-held footprint memo.
    /// Identical result; repeat tenants skip the placement pass.
    pub fn min_reserve_cached(&self, hw: &HwConfig, memo: &mut FootprintCache) -> Bytes {
        let tuples: Vec<u64> = self.inputs.iter().map(|r| r.len() as u64).collect();
        let fp = memo.footprint(
            &self.plan,
            &tuples,
            hw,
            hw.gpu.mem_capacity.0,
            self.force_materialize,
        );
        Bytes(fp.peak)
    }

    /// Desired working-set cache beyond the floor: the base relations
    /// the join nodes would like to keep device-side.
    pub fn cache_desired(&self) -> Bytes {
        Bytes(self.input_tuples() * TUPLE_BYTES)
    }

    /// Execute the plan, surfacing simulated out-of-memory conditions.
    /// Runs under the granted budget when the scheduler set one.
    pub fn run(&self, hw: &HwConfig) -> Result<PlanRun, OutOfMemory> {
        let cfg = PlanConfig {
            force_materialize: self.force_materialize,
            budget: self.budget,
            cache: self.cache_grant,
            skew: self.skew,
        };
        execute(&self.plan, &self.inputs, hw, &cfg).map_err(|e| match e {
            PlanError::Oom(oom) => oom,
            // Unreachable: the constructor validated the plan. Surface
            // it as a zero-byte allocation failure rather than panic.
            PlanError::Invalid(_) => OutOfMemory {
                side: MemSide::Gpu,
                requested: Bytes(0),
                available: Bytes(0),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{EmitMap, PlanNode};

    fn query() -> PlanQuery {
        let r = Relation::from_columns((1..=256u64).collect(), (0..256u64).collect());
        let s = Relation::from_columns(
            (0..2048u64).map(|i| i % 256 + 1).collect(),
            (0..2048u64).collect(),
        );
        let plan = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Join {
                    build: 0,
                    probe: 1,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 2 },
            ],
        };
        PlanQuery::new(plan, vec![r, s]).unwrap()
    }

    #[test]
    fn constructor_validates() {
        let bad = Plan { nodes: vec![] };
        assert!(PlanQuery::new(bad, vec![]).is_err());
    }

    #[test]
    fn reserve_is_peak_not_sum() {
        let hw = HwConfig::ac922().scaled(2048);
        let q = query();
        let fp = q.footprint(&hw, hw.gpu.mem_capacity.0);
        assert_eq!(q.min_reserve(&hw).0, fp.peak);
        assert!(fp.peak < fp.sum);
    }

    #[test]
    fn force_materialize_shrinks_the_reservation() {
        let hw = HwConfig::ac922().scaled(2048);
        let mut q = query();
        let piped = q.min_reserve(&hw);
        q.force_materialize = true;
        assert!(q.min_reserve(&hw) <= piped);
    }

    #[test]
    fn runs_and_answers() {
        let hw = HwConfig::ac922().scaled(2048);
        let q = query();
        let run = q.run(&hw).unwrap();
        assert_eq!(run.agg, crate::oracle::reference_plan(q.plan(), q.inputs()));
    }
}
