//! Per-tenant SLO accounting.
//!
//! A *tenant* is the workload family a query belongs to: the query-name
//! prefix before the first `-` (`"dash-0.1"` → `dash`, `"etl-3"` →
//! `etl`), so the serving demos' naming convention doubles as the tenant
//! taxonomy without any new submission API.
//!
//! ## SLO definitions
//!
//! * A query *participates* in its tenant's latency SLO iff it was
//!   submitted with a deadline; the deadline is the latency objective.
//! * The SLO is **met** when the query completes with
//!   `latency <= deadline`, and **violated** when it completes late *or*
//!   is shed for any reason (a refused query is a broken promise, not a
//!   neutral outcome).
//! * **Attainment** is `met / participating`, in integer ppm.
//! * Each tenant has an **error budget**: the allowed violation fraction
//!   ([`SloAccount::error_budget_ppm`], default 1 % = 10 000 ppm).
//!   **Budget burn** is the violation fraction divided by the allowed
//!   fraction, in ppm of the budget: 1 000 000 means the budget is
//!   exactly spent, above it the tenant is out of budget.
//!
//! All accounting is integer arithmetic on values crossed over from the
//! simulated clock once (via [`triton_metrics::sim_ns`]), so accounts
//! replay byte-identically; latency distributions use the bounded
//! [`Log2Histogram`] rather than per-query vectors.

use triton_metrics::Log2Histogram;

/// Default error budget: 1 % of deadline-holding queries may violate.
pub const DEFAULT_ERROR_BUDGET_PPM: u64 = 10_000;

/// Derive the tenant of a query name: the prefix before the first `-`,
/// or the whole name when it has none.
#[must_use]
pub fn tenant_of(name: &str) -> &str {
    name.split('-').next().unwrap_or(name)
}

/// One tenant's SLO account over a serving run (see module docs for the
/// definitions). Built incrementally at scheduler decision points and
/// threaded into [`crate::ServeResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloAccount {
    /// Tenant label (query-name prefix).
    pub tenant: String,
    /// Queries of this tenant that completed.
    pub completed: u64,
    /// Queries of this tenant that were shed (any reject reason).
    pub shed: u64,
    /// Deadline-holding queries that reached a terminal state.
    pub slo_total: u64,
    /// Deadline-holding queries that completed within their deadline.
    pub slo_met: u64,
    /// Allowed violation fraction in ppm.
    pub error_budget_ppm: u64,
    /// Grant revisions (shrinks/grows) applied to this tenant's queries.
    pub grant_revisions: u64,
    /// Completed-query latency distribution in simulated ns.
    pub latency: Log2Histogram,
}

impl SloAccount {
    /// A fresh account for `tenant` with the default error budget.
    #[must_use]
    pub fn new(tenant: impl Into<String>) -> SloAccount {
        SloAccount {
            tenant: tenant.into(),
            completed: 0,
            shed: 0,
            slo_total: 0,
            slo_met: 0,
            error_budget_ppm: DEFAULT_ERROR_BUDGET_PPM,
            grant_revisions: 0,
            latency: Log2Histogram::new(),
        }
    }

    /// SLO violations so far (late completions + sheds of deadline
    /// holders).
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.slo_total.saturating_sub(self.slo_met)
    }

    /// Attainment in ppm of participating queries (1 000 000 when no
    /// query participates — an empty SLO is trivially met).
    #[must_use]
    pub fn attainment_ppm(&self) -> u64 {
        if self.slo_total == 0 {
            return 1_000_000;
        }
        (u128::from(self.slo_met) * 1_000_000 / u128::from(self.slo_total)) as u64
    }

    /// Error-budget burn in ppm of the budget: the violation fraction
    /// divided by the allowed fraction. 1 000 000 ⇔ budget exactly
    /// spent; saturates rather than overflowing.
    #[must_use]
    pub fn budget_burn_ppm(&self) -> u64 {
        if self.slo_total == 0 || self.error_budget_ppm == 0 {
            return if self.violations() > 0 { u64::MAX } else { 0 };
        }
        let burn = u128::from(self.violations()) * 1_000_000 * 1_000_000
            / (u128::from(self.slo_total) * u128::from(self.error_budget_ppm));
        u64::try_from(burn).unwrap_or(u64::MAX)
    }

    /// Deterministic JSON encoding with a fixed key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"completed\":{},\"shed\":{},\"slo_total\":{},\"slo_met\":{},\"attainment_ppm\":{},\"error_budget_ppm\":{},\"budget_burn_ppm\":{},\"grant_revisions\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{},\"latency_max_ns\":{}}}",
            self.tenant,
            self.completed,
            self.shed,
            self.slo_total,
            self.slo_met,
            self.attainment_ppm(),
            self.error_budget_ppm,
            self.budget_burn_ppm(),
            self.grant_revisions,
            self.latency.value_at_percentile(50),
            self.latency.value_at_percentile(99),
            self.latency.max(),
        )
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {} completed, {} shed, SLO {}/{} ({} ppm), budget burn {} ppm, {} grant revisions, p99 {} ns",
            self.tenant,
            self.completed,
            self.shed,
            self.slo_met,
            self.slo_total,
            self.attainment_ppm(),
            self.budget_burn_ppm(),
            self.grant_revisions,
            self.latency.value_at_percentile(99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_is_the_dash_prefix() {
        assert_eq!(tenant_of("dash-0.1"), "dash");
        assert_eq!(tenant_of("etl-3"), "etl");
        assert_eq!(tenant_of("t0"), "t0");
        assert_eq!(tenant_of(""), "");
    }

    #[test]
    fn attainment_and_burn_are_integer_exact() {
        let mut a = SloAccount::new("dash");
        a.slo_total = 200;
        a.slo_met = 198;
        // 2 violations out of 200 = 10_000 ppm violated; budget is
        // 10_000 ppm -> exactly spent.
        assert_eq!(a.attainment_ppm(), 990_000);
        assert_eq!(a.violations(), 2);
        assert_eq!(a.budget_burn_ppm(), 1_000_000);
        a.slo_met = 200;
        assert_eq!(a.budget_burn_ppm(), 0);
        a.slo_met = 0;
        // 100% violations vs a 1% budget: 100x over.
        assert_eq!(a.budget_burn_ppm(), 100_000_000);
    }

    #[test]
    fn empty_slo_is_trivially_met() {
        let a = SloAccount::new("batch");
        assert_eq!(a.attainment_ppm(), 1_000_000);
        assert_eq!(a.budget_burn_ppm(), 0);
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let mut a = SloAccount::new("cpu");
        a.completed = 3;
        a.latency.record(1000);
        a.latency.record(2000);
        a.latency.record(4000);
        let json = a.to_json();
        assert_eq!(json, a.clone().to_json());
        for key in [
            "\"tenant\":\"cpu\"",
            "\"completed\":3",
            "\"attainment_ppm\":1000000",
            "\"latency_max_ns\":4000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
