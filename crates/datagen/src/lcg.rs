//! Linear congruential generator.
//!
//! Section 3.4.1 generates its random access pattern "efficiently via a
//! linear congruential generator" (citing Knuth). A full-period power-of-
//! two-modulus LCG visits every element of an array exactly once, which is
//! exactly what a bandwidth microbenchmark needs: random order without an
//! auxiliary permutation array.

/// A full-period LCG over `[0, 2^k)`.
///
/// With modulus `m = 2^k`, a multiplier `a ≡ 1 (mod 4)` and an odd
/// increment `c`, the Hull–Dobell theorem guarantees period `m`.
///
/// ```
/// use triton_datagen::Lcg;
/// // Visits all 256 values exactly once, in scattered order.
/// let seen: std::collections::HashSet<u64> = Lcg::new(8, 3).take(256).collect();
/// assert_eq!(seen.len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
    mask: u64,
    a: u64,
    c: u64,
}

impl Lcg {
    /// Multiplier used by Knuth's MMIX.
    pub const MMIX_A: u64 = 6364136223846793005;
    /// Increment used by Knuth's MMIX.
    pub const MMIX_C: u64 = 1442695040888963407;

    /// Create a full-period generator over `[0, 2^k)` starting at `seed`.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!((1..=63).contains(&k), "k must be in 1..=63");
        let mask = (1u64 << k) - 1;
        Lcg {
            state: seed & mask,
            mask,
            a: Self::MMIX_A,
            c: Self::MMIX_C,
        }
    }

    /// Next value in `[0, 2^k)`.
    #[inline]
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(self.a).wrapping_add(self.c) & self.mask;
        self.state
    }

    /// The period (2^k).
    pub fn period(&self) -> u64 {
        self.mask + 1
    }
}

impl Iterator for Lcg {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_period_visits_every_value_once() {
        let k = 12;
        let mut seen = vec![false; 1 << k];
        let mut lcg = Lcg::new(k, 7);
        for _ in 0..(1u64 << k) {
            let v = lcg.next_value() as usize;
            assert!(!seen[v], "value {v} repeated within the period");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "period must cover the whole range");
    }

    #[test]
    fn values_within_range() {
        let mut lcg = Lcg::new(8, 123);
        for _ in 0..1000 {
            assert!(lcg.next_value() < 256);
        }
    }

    #[test]
    fn not_sequential() {
        // The point of the LCG is a scattered order: successive outputs
        // should rarely be adjacent.
        let mut lcg = Lcg::new(16, 1);
        let mut adjacent = 0;
        let mut prev = lcg.next_value();
        for _ in 0..10_000 {
            let v = lcg.next_value();
            if v == prev + 1 || prev == v + 1 {
                adjacent += 1;
            }
            prev = v;
        }
        assert!(adjacent < 10, "{adjacent} adjacent pairs");
    }
}
