//! Deliberately malformed source: the parser must degrade to opaque
//! nodes without panicking, and the token rules must keep firing (the
//! HashMap below is still a D1 hit).

pub fn broken(map: HashMap<u64, u64>
    let x = match ) { { {
pub struct ;;; impl impl
fn also_broken( -> {
    let _ = KernelCost::new(;
}
fn unclosed(a: u64 {
    a..
