//! The metric registry: typed counters, gauges, and histograms, each
//! tracked as a run total *and* as fixed-width window deltas on the
//! simulated clock.
//!
//! ## Window semantics
//!
//! Windows are half-open intervals `[k·W, (k+1)·W)` of simulated
//! nanoseconds, `W` fixed at construction. Every mutation carries the
//! simulated timestamp of the decision that caused it; the registry
//! updates both the run total and the delta cell of the timestamp's
//! window. Windows with no activity are never materialised, so memory is
//! bounded by the number of *active* windows, not by makespan.
//!
//! ## Determinism rules
//!
//! All state lives in `BTreeMap`s keyed by metric name and window index;
//! counter and histogram arithmetic is integer-only. Exposition
//! ([`MetricsRegistry::expose_text`] / [`MetricsRegistry::expose_json`])
//! iterates those maps, so two same-seed replays render byte-identical
//! output — the property CI pins by `cmp`-ing two dumps.
//!
//! ## Reconciliation
//!
//! [`MetricsRegistry::reconcile`] checks, for every metric, that the sum
//! of its window deltas (or the merge of its window histograms) equals
//! the run total *exactly* — zero tolerance. Property tests drive this
//! across shuffled submission orders, fault schedules, and grant-revision
//! schedules.

use crate::hist::Log2Histogram;
use std::collections::BTreeMap;

/// Last-value gauge with exact min/max/sample-count envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gauge {
    /// Most recently set value.
    pub last: u64,
    /// Simulated timestamp of the last set.
    pub ts_ns: u64,
    /// Smallest value ever set.
    pub min: u64,
    /// Largest value ever set.
    pub max: u64,
    /// Number of sets.
    pub samples: u64,
}

/// Convert a simulated-clock timestamp expressed as `f64` nanoseconds
/// (the workspace's `Ns` representation) to the registry's integer
/// timeline. This is the single float→integer boundary: everything past
/// it is integer arithmetic. Negative and non-finite inputs clamp to 0.
pub fn sim_ns(ts: f64) -> u64 {
    if ts.is_finite() && ts > 0.0 {
        ts as u64
    } else {
        0
    }
}

/// Deterministic time-series metric registry (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    window_ns: u64,
    counters: BTreeMap<String, u64>,
    counter_windows: BTreeMap<String, BTreeMap<u64, u64>>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Log2Histogram>,
    hist_windows: BTreeMap<String, BTreeMap<u64, Log2Histogram>>,
}

impl MetricsRegistry {
    /// A registry with the given window width in simulated nanoseconds
    /// (clamped to at least 1).
    pub fn new(window_ns: u64) -> MetricsRegistry {
        MetricsRegistry {
            window_ns: window_ns.max(1),
            ..MetricsRegistry::default()
        }
    }

    /// The window width in simulated nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Window index owning a timestamp.
    pub fn window_of(&self, ts_ns: u64) -> u64 {
        ts_ns / self.window_ns
    }

    /// Add `delta` to a monotonic counter at simulated time `ts_ns`.
    pub fn counter_add(&mut self, name: &str, delta: u64, ts_ns: u64) {
        if delta == 0 {
            return;
        }
        let total = self.counters.entry(name.to_string()).or_insert(0);
        *total = total.saturating_add(delta);
        let w = ts_ns / self.window_ns;
        let cell = self
            .counter_windows
            .entry(name.to_string())
            .or_default()
            .entry(w)
            .or_insert(0);
        *cell = cell.saturating_add(delta);
    }

    /// Increment a monotonic counter by one.
    pub fn counter_inc(&mut self, name: &str, ts_ns: u64) {
        self.counter_add(name, 1, ts_ns);
    }

    /// Set a gauge. Returns `true` when the stored value changed (or the
    /// gauge is new) — callers use this to emit trace counter events only
    /// on transitions.
    pub fn gauge_set(&mut self, name: &str, value: u64, ts_ns: u64) -> bool {
        match self.gauges.get_mut(name) {
            Some(g) => {
                let changed = g.last != value;
                g.last = value;
                g.ts_ns = ts_ns;
                g.min = g.min.min(value);
                g.max = g.max.max(value);
                g.samples = g.samples.saturating_add(1);
                changed
            }
            None => {
                self.gauges.insert(
                    name.to_string(),
                    Gauge {
                        last: value,
                        ts_ns,
                        min: value,
                        max: value,
                        samples: 1,
                    },
                );
                true
            }
        }
    }

    /// Record one value into a named streaming histogram at `ts_ns`.
    pub fn observe(&mut self, name: &str, value: u64, ts_ns: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
        let w = ts_ns / self.window_ns;
        self.hist_windows
            .entry(name.to_string())
            .or_default()
            .entry(w)
            .or_default()
            .record(value);
    }

    /// Run-total value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge state, if ever set.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// Run-total histogram, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.hists.get(name)
    }

    /// Per-window deltas of a counter, ascending by window index.
    pub fn counter_windows(&self, name: &str) -> Vec<(u64, u64)> {
        self.counter_windows
            .get(name)
            .map(|m| m.iter().map(|(&w, &d)| (w, d)).collect())
            .unwrap_or_default()
    }

    /// Per-window histograms of a metric, ascending by window index.
    pub fn histogram_windows(&self, name: &str) -> Vec<(u64, &Log2Histogram)> {
        self.hist_windows
            .get(name)
            .map(|m| m.iter().map(|(&w, h)| (w, h)).collect())
            .unwrap_or_default()
    }

    /// Names of all counters, in exposition order.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// Verify every window decomposition against its run total, exactly.
    /// Returns the list of mismatching metric names (empty ⇔ reconciled).
    pub fn reconcile(&self) -> Result<(), Vec<String>> {
        let mut bad = Vec::new();
        for (name, &total) in &self.counters {
            let winsum: u64 = self
                .counter_windows
                .get(name)
                .map(|m| m.values().fold(0u64, |a, &d| a.saturating_add(d)))
                .unwrap_or(0);
            if winsum != total {
                bad.push(format!("counter {name}: windows {winsum} != total {total}"));
            }
        }
        for (name, total) in &self.hists {
            let mut merged = Log2Histogram::new();
            if let Some(wins) = self.hist_windows.get(name) {
                for h in wins.values() {
                    merged.merge(h);
                }
            }
            if &merged != total {
                bad.push(format!(
                    "histogram {name}: window merge (count {}) != total (count {})",
                    merged.count(),
                    total.count()
                ));
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Deterministic plain-text exposition: one line per metric plus one
    /// line per active window cell, in `BTreeMap` order. Byte-identical
    /// across same-seed replays.
    pub fn expose_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# triton-metrics window_ns={}\n", self.window_ns));
        for (name, total) in &self.counters {
            out.push_str(&format!("counter {name} {total}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!(
                "gauge {name} last={} min={} max={} samples={}\n",
                g.last, g.min, g.max, g.samples
            ));
        }
        for (name, h) in &self.hists {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} max={} p50={} p99={}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.value_at_percentile(50),
                h.value_at_percentile(99)
            ));
            for (lower, n) in h.nonzero_buckets() {
                out.push_str(&format!("  bucket {lower} {n}\n"));
            }
        }
        for (name, wins) in &self.counter_windows {
            for (w, d) in wins {
                out.push_str(&format!("window {w} counter {name} {d}\n"));
            }
        }
        for (name, wins) in &self.hist_windows {
            for (w, h) in wins {
                out.push_str(&format!(
                    "window {w} histogram {name} count={} sum={}\n",
                    h.count(),
                    h.sum()
                ));
            }
        }
        out
    }

    /// Deterministic JSON exposition (totals only; windows are a test and
    /// text-format concern). Metric names are code-controlled identifiers
    /// but are escaped anyway for JSON safety.
    pub fn expose_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"window_ns\":{}", self.window_ns));
        out.push_str(",\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, (name, total)| {
            out.push_str(&format!("{}:{}", quote(name), total));
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, (name, g)| {
            out.push_str(&format!(
                "{}:{{\"last\":{},\"min\":{},\"max\":{},\"samples\":{}}}",
                quote(name),
                g.last,
                g.min,
                g.max,
                g.samples
            ));
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.hists.iter(), |out, (name, h)| {
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                quote(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.value_at_percentile(50),
                h.value_at_percentile(99)
            ));
            push_entries(out, h.nonzero_buckets(), |out, (lower, n)| {
                out.push_str(&format!("[{lower},{n}]"));
            });
            out.push_str("]}");
        });
        out.push_str("}}");
        out
    }
}

/// Comma-join helper for hand-rolled JSON.
fn push_entries<I, T>(out: &mut String, entries: I, mut f: impl FnMut(&mut String, T))
where
    I: IntoIterator<Item = T>,
{
    for (i, e) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f(out, e);
    }
}

/// Minimal RFC 8259 string quoting for metric names.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_windows_reconcile_exactly() {
        let mut r = MetricsRegistry::new(100);
        for t in [0u64, 5, 99, 100, 101, 250, 999] {
            r.counter_add("x", t + 1, t);
        }
        let expect: u64 = [0u64, 5, 99, 100, 101, 250, 999]
            .iter()
            .map(|t| t + 1)
            .sum();
        assert_eq!(r.counter("x"), expect);
        let wins = r.counter_windows("x");
        assert_eq!(wins.first().map(|w| w.0), Some(0));
        assert!(r.reconcile().is_ok());
    }

    #[test]
    fn histogram_windows_merge_to_total() {
        let mut r = MetricsRegistry::new(1000);
        for i in 0..500u64 {
            r.observe("lat", i * 37 % 9001, i * 13);
        }
        assert!(r.reconcile().is_ok());
        let total = r.histogram("lat").map(Log2Histogram::count);
        assert_eq!(total, Some(500));
    }

    #[test]
    fn gauge_change_detection() {
        let mut r = MetricsRegistry::new(10);
        assert!(r.gauge_set("g", 5, 0));
        assert!(!r.gauge_set("g", 5, 1));
        assert!(r.gauge_set("g", 6, 2));
        let g = r.gauge("g").unwrap();
        assert_eq!((g.last, g.min, g.max, g.samples), (6, 5, 6, 3));
    }

    #[test]
    fn exposition_is_deterministic_and_ordered() {
        let build = || {
            let mut r = MetricsRegistry::new(50);
            r.counter_inc("b.count", 7);
            r.counter_inc("a.count", 3);
            r.gauge_set("z.gauge", 9, 11);
            r.observe("m.lat", 123, 60);
            r
        };
        let a = build();
        let b = build();
        assert_eq!(a.expose_text(), b.expose_text());
        assert_eq!(a.expose_json(), b.expose_json());
        let text = a.expose_text();
        // BTreeMap order: a.count before b.count.
        let ia = text.find("counter a.count").unwrap();
        let ib = text.find("counter b.count").unwrap();
        assert!(ia < ib, "{text}");
        assert!(text.contains("window 1 histogram m.lat count=1"), "{text}");
        let json = a.expose_json();
        assert!(json.starts_with("{\"window_ns\":50,"), "{json}");
        assert!(json.contains("\"m.lat\":{\"count\":1,"), "{json}");
    }

    #[test]
    fn sim_ns_boundary_clamps() {
        assert_eq!(sim_ns(-5.0), 0);
        assert_eq!(sim_ns(f64::NAN), 0);
        assert_eq!(sim_ns(f64::INFINITY), 0);
        assert_eq!(sim_ns(1234.9), 1234);
    }

    #[test]
    fn reconcile_reports_nothing_for_empty_registry() {
        assert!(MetricsRegistry::new(1).reconcile().is_ok());
    }
}
