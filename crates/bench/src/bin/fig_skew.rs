//! Skew sweep: blind vs skew-aware Triton join over Zipf exponents.
//!
//! Usage: `fig_skew [--check] [--out PATH]`
//!
//! Prints the sweep table, writes the machine-readable sweep to `PATH`
//! (default `BENCH_skew.json`), and with `--check` exits non-zero unless
//! the skew-aware total is at or below the blind total at θ = 1.5.

use triton_bench::figs::fig_skew;

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_skew.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let hw = triton_bench::hw();
    let m = fig_skew::DEFAULT_M_TUPLES;
    let rows = fig_skew::print(&hw, m);
    let json = fig_skew::to_json(&hw, m, &rows);
    std::fs::write(&out, &json).expect("write sweep JSON");
    println!("wrote {out}");

    if check {
        let win = fig_skew::win_at_theta_1_5(&rows).expect("theta 1.5 in axis");
        if win < 0.0 {
            eprintln!(
                "FAIL: skew-aware total exceeds blind at theta 1.5 by {:.2}%",
                -win * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "check ok: skew-aware <= blind at theta 1.5 ({:.1}% lower)",
            win * 100.0
        );
    }
}
