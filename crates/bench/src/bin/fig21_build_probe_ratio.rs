//! Fig 21: build-to-probe ratios at constant data volume.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig21::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
