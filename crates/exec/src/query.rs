//! Query descriptors submitted to the serving runtime.

use triton_core::{
    CpuPartitionedJoin, CpuRadixJoin, JoinReport, NoPartitioningJoin, SkewPolicy, TritonJoin,
};
use triton_datagen::{Rng, Workload, WorkloadSpec};
use triton_hw::units::Ns;
use triton_hw::HwConfig;
use triton_mem::OutOfMemory;
use triton_plan::PlanQuery;

/// Identifier assigned to a submitted query, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The join operator a query runs.
#[derive(Debug, Clone)]
pub enum Operator {
    /// The Triton join (GPU-partitioned hybrid hash join).
    Triton(TritonJoin),
    /// GPU no-partitioning join (one global hash table).
    NoPartitioning(NoPartitioningJoin),
    /// CPU-partitioned GPU join: the CPU radix-partitions, the GPU joins
    /// working sets — needs far less GPU memory than the Triton join
    /// (the degradation ladder's middle rung under memory pressure).
    CpuPartitioned(CpuPartitionedJoin),
    /// CPU radix join — consumes no GPU memory or SMs.
    CpuRadix(CpuRadixJoin),
    /// A multi-operator query plan (`triton-plan`): select/Bloom/join/agg
    /// DAG with GPU-resident pipelining. Admission reserves the plan's
    /// *peak* concurrent operator footprint, not the sum of all
    /// operators.
    Plan(Box<PlanQuery>),
}

impl Operator {
    /// Default Triton configuration.
    pub fn triton() -> Self {
        Operator::Triton(TritonJoin::default())
    }

    /// Triton with the skew-aware policy (hotness-weighted placement,
    /// LPT pipeline scheduling, heavy-hitter splitting) enabled.
    pub fn triton_skew_aware() -> Self {
        Operator::Triton(TritonJoin {
            skew: SkewPolicy::aware(),
            ..TritonJoin::default()
        })
    }

    /// The skew policy this operator runs with, when it is a Triton join
    /// or a plan (plans apply the policy to every join node).
    pub fn skew(&self) -> Option<SkewPolicy> {
        match self {
            Operator::Triton(j) => Some(j.skew),
            Operator::Plan(p) => Some(p.skew),
            _ => None,
        }
    }

    /// Execute the operator functionally, surfacing simulated OOM. Plans
    /// carry their own inputs and ignore `w`.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> Result<JoinReport, OutOfMemory> {
        match self {
            Operator::Triton(j) => j.try_run(w, hw),
            Operator::NoPartitioning(j) => Ok(j.run(w, hw)),
            Operator::CpuPartitioned(j) => Ok(j.run(w, hw)),
            Operator::CpuRadix(j) => Ok(j.run(w, hw)),
            Operator::Plan(p) => p.run(hw).map(|r| r.report),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Operator::Triton(_) => "triton",
            Operator::NoPartitioning(_) => "npj",
            Operator::CpuPartitioned(_) => "cpu-part",
            Operator::CpuRadix(_) => "cpu-radix",
            Operator::Plan(_) => "plan",
        }
    }

    /// Whether the operator occupies the GPU at all (transient kernel
    /// faults can only hit GPU-resident operators).
    pub fn uses_gpu(&self) -> bool {
        !matches!(self, Operator::CpuRadix(_))
    }
}

/// One join query submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Human-readable tag (tenant, statement id, ...).
    pub name: String,
    /// The workload to join. Queries sharing a build relation should carry
    /// the same `build_key` and byte-identical `w.r` (see
    /// [`JoinQuery::probe_batch`]).
    pub workload: Workload,
    /// Operator choice.
    pub op: Operator,
    /// Scheduling weight: relative share of machine resources while
    /// running, and queue ordering. 1 = normal; must be >= 1.
    pub priority: u32,
    /// Optional latency budget relative to arrival (simulated time). The
    /// scheduler sheds the query rather than starting it once the budget
    /// cannot be met.
    pub deadline: Option<Ns>,
    /// Simulated arrival time.
    pub arrival: Ns,
    /// Cache key identifying the build relation *family* for build-side
    /// sharing; `None` disables sharing for this query.
    pub build_key: Option<u64>,
    /// Radix-partition range (half-open, within
    /// `0..1 << BUILD_RADIX_BITS`) of the build side within its family;
    /// `None` means the whole relation. A query whose range is covered
    /// by a resident build of the same family reuses that state instead
    /// of rebuilding (see [`crate::BuildCache`]).
    pub build_range: Option<(u32, u32)>,
}

impl JoinQuery {
    /// A plain query: default Triton join, normal priority, no deadline.
    pub fn new(name: impl Into<String>, workload: Workload, arrival: Ns) -> Self {
        JoinQuery {
            name: name.into(),
            workload,
            op: Operator::triton(),
            priority: 1,
            deadline: None,
            arrival,
            build_key: None,
            build_range: None,
        }
    }

    /// A multi-operator plan query. The scheduler's bookkeeping (shed
    /// accounting, probe-batch sharing) keys off a `Workload`, so a
    /// placeholder is synthesized from the plan's first and last base
    /// relations; execution and admission use the plan itself.
    pub fn plan(name: impl Into<String>, plan: PlanQuery, arrival: Ns) -> Self {
        let r = plan.inputs().first().cloned().unwrap_or_default();
        let s = plan.inputs().last().cloned().unwrap_or_default();
        let spec = WorkloadSpec {
            r_tuples_modeled: r.len() as u64,
            s_tuples_modeled: s.len() as u64,
            scale: 1,
            payload_cols: 0,
            zipf_theta: 0.0,
            match_fraction: 1.0,
            seed: 0,
        };
        JoinQuery {
            name: name.into(),
            workload: Workload { r, s, spec },
            op: Operator::Plan(Box::new(plan)),
            priority: 1,
            deadline: None,
            arrival,
            build_key: None,
            build_range: None,
        }
    }

    /// Set the skew policy of this query's Triton or plan operator; a
    /// no-op for the other operators.
    #[must_use]
    pub fn with_skew(mut self, policy: SkewPolicy) -> Self {
        match &mut self.op {
            Operator::Triton(j) => j.skew = policy,
            Operator::Plan(p) => p.skew = policy,
            _ => {}
        }
        self
    }

    /// Derive a probe batch against the same build relation: keeps `R`
    /// (and the `build_key` must be set by the caller to enable reuse),
    /// regenerates `S` with `probe_seed` — foreign keys uniform over R's
    /// key range, like the base workload generator.
    pub fn probe_batch(base: &Workload, probe_seed: u64) -> Workload {
        let mut rng = Rng::seed_from_u64(probe_seed);
        let n_r = base.r.len() as u64;
        let n_s = base.s.len();
        let s_keys: Vec<u64> = (0..n_s).map(|_| rng.gen_range_u64(1, n_r)).collect();
        let s_rids: Vec<u64> = (0..n_s).map(|_| rng.next_u64()).collect();
        Workload {
            r: base.r.clone(),
            s: triton_datagen::Relation::from_columns(s_keys, s_rids),
            spec: base.spec.clone(),
        }
    }

    /// Radix partition a build-side key lands in for build-state
    /// sharing: the low [`crate::BUILD_RADIX_BITS`] bits of the hashed
    /// key, exactly the assignment the first partitioning pass uses.
    pub fn build_partition_of(key: u64) -> u32 {
        triton_datagen::radix(
            triton_datagen::multiply_shift(key),
            0,
            crate::build_cache::BUILD_RADIX_BITS,
        ) as u32
    }

    /// Derive a *slice* workload over the same build family: `R` keeps
    /// only the rows whose radix partition falls in `range`, and `S` is
    /// regenerated with `probe_seed` as foreign keys drawn from the
    /// sliced `R` (probe volume scaled by the slice fraction). A query
    /// built from this workload should carry the family's `build_key`
    /// and `build_range = Some(range)` — its partitioned build state is
    /// physically the `[lo, hi)` slice of the family's, so a resident
    /// covering build serves it without rebuilding.
    pub fn probe_slice(base: &Workload, range: (u32, u32), probe_seed: u64) -> Workload {
        let mut rng = Rng::seed_from_u64(probe_seed);
        let keep: Vec<usize> = (0..base.r.len())
            .filter(|&i| {
                let p = Self::build_partition_of(base.r.keys[i]);
                range.0 <= p && p < range.1
            })
            .collect();
        let r_keys: Vec<u64> = keep.iter().map(|&i| base.r.keys[i]).collect();
        let r_rids: Vec<u64> = keep.iter().map(|&i| base.r.rids[i]).collect();
        let full = 1u64 << crate::build_cache::BUILD_RADIX_BITS;
        let span = u64::from(range.1.saturating_sub(range.0));
        let n_s = ((base.s.len() as u64 * span) / full.max(1)).max(1) as usize;
        let (s_keys, s_rids) = if r_keys.is_empty() {
            // Degenerate slice (tiny R): a single unmatched probe keeps
            // the workload well-formed without inventing build rows.
            (vec![u64::MAX], vec![rng.next_u64()])
        } else {
            let ks: Vec<u64> = (0..n_s)
                .map(|_| r_keys[rng.gen_index(r_keys.len())])
                .collect();
            let rs: Vec<u64> = (0..n_s).map(|_| rng.next_u64()).collect();
            (ks, rs)
        };
        let mut spec = base.spec.clone();
        spec.r_tuples_modeled = r_keys.len() as u64;
        spec.s_tuples_modeled = s_keys.len() as u64;
        Workload {
            r: triton_datagen::Relation::from_columns(r_keys, r_rids),
            s: triton_datagen::Relation::from_columns(s_keys, s_rids),
            spec,
        }
    }

    /// Total tuples this query processes (throughput numerator). Plans
    /// count every base relation, not the placeholder workload.
    pub fn tuples(&self) -> u64 {
        match &self.op {
            Operator::Plan(p) => p.input_tuples(),
            _ => self.workload.total_tuples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn probe_batch_shares_r_and_varies_s() {
        let base = WorkloadSpec::paper_default(2, 2048).generate();
        let a = JoinQuery::probe_batch(&base, 1);
        let b = JoinQuery::probe_batch(&base, 2);
        assert_eq!(a.r.keys, base.r.keys);
        assert_eq!(b.r.keys, base.r.keys);
        assert_ne!(a.s.keys, b.s.keys);
        // All probe keys land in R's key domain (full match fraction).
        let n_r = base.r.len() as u64;
        assert!(a.s.keys.iter().all(|&k| (1..=n_r).contains(&k)));
    }

    #[test]
    fn probe_slice_partitions_and_probes_within_range() {
        let base = WorkloadSpec::paper_default(2, 2048).generate();
        let range = (0u32, 64u32);
        let w = JoinQuery::probe_slice(&base, range, 7);
        assert!(!w.r.keys.is_empty());
        assert!(w.r.len() < base.r.len(), "a slice is a strict subset");
        for &k in &w.r.keys {
            let p = JoinQuery::build_partition_of(k);
            assert!(range.0 <= p && p < range.1);
        }
        // Every probe key comes from the sliced build side.
        let build: std::collections::BTreeSet<u64> = w.r.keys.iter().copied().collect();
        assert!(w.s.keys.iter().all(|k| build.contains(k)));
        // Probe volume scales with the slice fraction.
        assert!(w.s.len() <= base.s.len() / 2);
        // Slicing is deterministic per seed.
        let again = JoinQuery::probe_slice(&base, range, 7);
        assert_eq!(w.r.keys, again.r.keys);
        assert_eq!(w.s.keys, again.s.keys);
    }
}
