//! Stale-waiver fixture: a well-formed pragma that matches no finding
//! must surface as unused (and fail the run).

// triton-lint: allow(d1) -- historical; the map this covered was removed
pub fn no_findings_here() -> u32 {
    7
}
