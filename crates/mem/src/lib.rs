//! # triton-mem
//!
//! Simulated memory substrate for the Triton-join reproduction:
//!
//! * [`alloc::SimAllocator`] — a capacity-tracked allocator over the
//!   (scaled) GPU and CPU memories, handing out page-aligned virtual
//!   ranges so algorithms face the same fit/spill decisions as on the real
//!   machine;
//! * [`interleave`] — the paper's Section 5.3 scheme that maps GPU and CPU
//!   pages, interleaved in proportion to the cached fraction, into one
//!   contiguous virtual array.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alloc;
pub mod interleave;

pub use alloc::{Allocation, OutOfMemory, SimAllocator};
pub use interleave::{HybridLayout, InterleavePattern, Placement, PlacementPlan};
