//! Fig 16: partitioning data using the CPU vs the GPU — (a) the
//! end-to-end join and (b) the partitioning phase in isolation.
//!
//! Compares the reimplemented CPU-partitioned strategy (Sioulas et al.,
//! tuned for POWER9 + NVLink 2.0) against the GPU-partitioned Triton
//! join. Expected shape: Triton 1.2-1.3x faster end to end, and the GPU
//! partitions 1.5-1.7x faster than the CPU.

use triton_core::{CpuPartitionedJoin, TritonJoin};
use triton_datagen::{WorkloadSpec, TUPLE_BYTES};
use triton_hw::HwConfig;
use triton_part::{
    cpu_partition_time, gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span,
};

/// One workload group.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload size in modeled M tuples.
    pub m_tuples: u64,
    /// End-to-end CPU-partitioned join (G tuples/s).
    pub cpu_partitioned_gtps: f64,
    /// End-to-end Triton join (G tuples/s).
    pub triton_gtps: f64,
    /// CPU partitioning phase throughput (GiB/s, read+write volume).
    pub cpu_partition_gibs: f64,
    /// GPU partitioning phase throughput (GiB/s, read+write volume).
    pub gpu_partition_gibs: f64,
}

/// Run for the given workloads.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let gib = (1u64 << 30) as f64;
    sizes
        .iter()
        .map(|&m| {
            let w = WorkloadSpec::paper_default(m, k).generate();
            let cpu_rep = CpuPartitionedJoin::default().run(&w, hw);
            let triton_rep = TritonJoin::default().run(&w, hw);

            // Partitioning in isolation: one relation, b1 bits.
            let b1 = TritonJoin::pass1_bits(
                w.r.len() as u64 * TUPLE_BYTES,
                w.total_tuples() * TUPLE_BYTES,
                hw,
            );
            let n = w.r.len() as u64;
            let volume = 2.0 * (n * TUPLE_BYTES) as f64 / gib; // read + write
            let t_cpu = cpu_partition_time(n, b1, 1, hw);
            let pass = PassConfig::new(b1, 0);
            let input = Span::cpu(0);
            let output = Span::cpu(1 << 40);
            let part = make_partitioner(Algorithm::Hierarchical);
            let (hist, cps) = gpu_prefix_sum(&w.r.keys, &input, &pass, hw, false);
            let (_, cp) = part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, hw);
            let t_gpu = cps.timing(hw).total + cp.timing(hw).total;

            Row {
                m_tuples: m,
                cpu_partitioned_gtps: cpu_rep.throughput_gtps(),
                triton_gtps: triton_rep.throughput_gtps(),
                cpu_partition_gibs: volume / t_cpu.as_secs(),
                gpu_partition_gibs: volume / t_gpu.as_secs(),
            }
        })
        .collect()
}

/// Print both panels.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 16", "CPU-partitioned vs GPU-partitioned join");
    let mut t = crate::Table::new([
        "M tuples",
        "CPU-part join (G/s)",
        "Triton (G/s)",
        "speedup",
        "CPU part (GiB/s)",
        "GPU part (GiB/s)",
    ]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            crate::f3(r.cpu_partitioned_gtps),
            crate::f3(r.triton_gtps),
            format!("{:.2}x", r.triton_gtps / r.cpu_partitioned_gtps),
            crate::f1(r.cpu_partition_gibs),
            crate::f1(r.gpu_partition_gibs),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triton_speedup_in_paper_range() {
        let hw = HwConfig::ac922().scaled(2048);
        for r in run(&hw, &[128, 2048]) {
            let speedup = r.triton_gtps / r.cpu_partitioned_gtps;
            // Paper: 1.2-1.3x.
            assert!(
                (1.05..=1.6).contains(&speedup),
                "{} M: speedup {speedup}",
                r.m_tuples
            );
        }
    }

    #[test]
    fn gpu_partitions_faster() {
        let hw = HwConfig::ac922().scaled(2048);
        for r in run(&hw, &[512, 2048]) {
            let ratio = r.gpu_partition_gibs / r.cpu_partition_gibs;
            // Paper: 1.5-1.7x.
            assert!(
                (1.2..=2.3).contains(&ratio),
                "{} M: partition ratio {ratio}",
                r.m_tuples
            );
        }
    }
}
