//! Model-level property tests for `triton-hw`: relationships the hardware
//! model must preserve regardless of calibration values.

use triton_hw::kernel::{pipeline2, KernelCost};
use triton_hw::link::{Alignment, Dir, LinkModel};
use triton_hw::tlb::{MemSide, SetAssocLru, TlbSim};
use triton_hw::units::{Bytes, BytesPerSec, Ns};
use triton_hw::{HwConfig, LinkConfig};

fn hw() -> HwConfig {
    HwConfig::ac922()
}

fn link() -> LinkModel {
    LinkModel::new(&hw().link)
}

// --- Link model -----------------------------------------------------------

#[test]
fn write_at_full_lines_have_no_partials() {
    let l = link();
    for lines in 1..8u64 {
        let wc = l.write_at(128 * 3, lines * 128);
        assert_eq!(wc.partial_txns, 0, "{lines} full lines");
        assert_eq!(wc.transactions, lines);
    }
}

#[test]
fn write_at_sub_line_is_one_partial() {
    let l = link();
    for len in [1u64, 8, 16, 32, 100, 127] {
        let wc = l.write_at(0, len);
        assert_eq!(wc.transactions, 1, "len={len}");
        assert_eq!(wc.partial_txns, 1, "len={len}");
    }
}

#[test]
fn write_at_straddling_offset_splits_lines() {
    let l = link();
    // 128 bytes at offset 64: two partial lines.
    let wc = l.write_at(64, 128);
    assert_eq!(wc.transactions, 2);
    assert_eq!(wc.partial_txns, 2);
    // Costs strictly more wire than the aligned equivalent.
    assert!(wc.wire_data_dir.0 > l.write_at(0, 128).wire_data_dir.0);
}

#[test]
fn read_at_exact_line_counts() {
    let l = link();
    assert_eq!(l.read_at(0, 128).transactions, 1);
    assert_eq!(l.read_at(127, 2).transactions, 2);
    assert_eq!(l.read_at(128, 256).transactions, 2);
    assert_eq!(l.read_at(130, 256).transactions, 3);
}

#[test]
fn wire_overhead_never_negative() {
    let l = link();
    for len in [1u64, 16, 128, 1000, 4096] {
        for off in [0u64, 1, 64, 127] {
            assert!(l.write_at(off, len).wire_data_dir.0 >= len);
            assert!(l.read_at(off, len).wire_data_dir.0 >= len);
        }
    }
}

#[test]
fn random_time_scales_linearly_in_access_count() {
    let l = link();
    let t1 = l.random_access_time(1_000, Bytes(32), Dir::CpuToGpu, Alignment::Natural);
    let t2 = l.random_access_time(2_000, Bytes(32), Dir::CpuToGpu, Alignment::Natural);
    assert!((t2.0 / t1.0 - 2.0).abs() < 1e-9);
}

#[test]
fn higher_raw_bandwidth_never_slows_transfers() {
    let mut fast: LinkConfig = hw().link;
    fast.raw_bw_per_dir = BytesPerSec::gb(150.0);
    let slow = link();
    let fast = LinkModel::new(&fast);
    for g in [16u64, 128, 512] {
        let ts = slow.random_access_time(1000, Bytes(g), Dir::GpuToCpu, Alignment::Natural);
        let tf = fast.random_access_time(1000, Bytes(g), Dir::GpuToCpu, Alignment::Natural);
        assert!(tf.0 <= ts.0 + 1e-9, "g={g}");
    }
}

// --- Kernel timing ---------------------------------------------------------

#[test]
fn kernel_time_monotone_in_every_resource() {
    let h = hw();
    let base = {
        let mut k = KernelCost::new("b");
        k.link.seq_read = Bytes::mib(64);
        k.gpu_mem.read = Bytes::mib(64);
        k.instructions = 1_000_000;
        k
    };
    let t0 = base.timing(&h).total.0;
    for grow in ["link", "gpu", "instr", "tlb", "sync"] {
        let mut k = base.clone();
        match grow {
            "link" => k.link.seq_read += Bytes::mib(64),
            "gpu" => k.gpu_mem.read += Bytes::gib(1),
            "instr" => k.instructions += 1_000_000_000,
            "tlb" => {
                k.tlb.full_misses += 1_000_000;
                k.tlb.serialized_walks += 1_000_000;
            }
            _ => k.sync_cycles += 100_000_000,
        }
        assert!(
            k.timing(&h).total.0 >= t0,
            "{grow}: growing demand must not reduce time"
        );
    }
}

#[test]
fn fewer_sms_never_faster() {
    let h = hw();
    let mut k = KernelCost::new("c");
    k.instructions = 500_000_000;
    k.link.seq_read = Bytes::mib(256);
    let mut prev = f64::INFINITY;
    for sms in [1u32, 10, 40, 80] {
        k.sms = sms;
        let t = k.timing(&h).total.0;
        assert!(t <= prev + 1e-9, "sms={sms}");
        prev = t;
    }
}

#[test]
fn pipeline2_bounds() {
    // Pipelined time is never less than either stage's serial sum, and
    // never more than the fully serial execution.
    let a = [Ns(3.0), Ns(7.0), Ns(2.0), Ns(9.0)];
    let b = [Ns(5.0), Ns(1.0), Ns(8.0), Ns(4.0)];
    let piped = pipeline2(&a, &b);
    let sum_a: f64 = a.iter().map(|x| x.0).sum();
    let sum_b: f64 = b.iter().map(|x| x.0).sum();
    assert!(piped.0 >= sum_a.max(sum_b));
    assert!(piped.0 <= sum_a + sum_b);
}

#[test]
fn merged_kernels_cost_the_sum() {
    let h = hw();
    let mut a = KernelCost::new("a");
    a.link.seq_read = Bytes::mib(100);
    let mut b = KernelCost::new("a");
    b.link.seq_read = Bytes::mib(60);
    let (ta, tb) = (a.timing(&h).total.0, b.timing(&h).total.0);
    a.merge(&b);
    let merged = a.timing(&h).total.0;
    assert!((merged - (ta + tb)).abs() / merged < 1e-6);
}

// --- TLB -------------------------------------------------------------------

#[test]
fn set_assoc_suffers_conflicts_before_capacity() {
    // A 4-way cache of 64 entries sees misses from a cyclic working set
    // well before 64 distinct tags, unlike a full LRU of the same size.
    // Cyclic working sets of *random* tags at 7/8 of capacity: unlike
    // evenly-strided partition frontiers (which the multiplicative set
    // hash spreads almost perfectly), random tags overload some sets.
    let mut total = 0usize;
    let mut total_misses = 0usize;
    let mut rng = 0x9E37u64;
    for _ in 0..8 {
        let mut sa = SetAssocLru::new(64, 4);
        let tags: Vec<u64> = (0..56)
            .map(|_| {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng >> 16
            })
            .collect();
        for _ in 0..4 {
            for &t in &tags {
                sa.access(t);
            }
        }
        total += tags.len();
        total_misses += tags.iter().filter(|&&t| !sa.access(t)).count();
    }
    assert!(total_misses > 0, "expected conflict misses below capacity");
    // But far from thrashing: most accesses still hit.
    assert!(total_misses < total / 2, "{total_misses} of {total}");
}

#[test]
fn tlb_flush_forgets_everything() {
    let h = HwConfig::ac922().scaled(1024);
    let mut t = TlbSim::new(&h);
    let reach = t.entry_reach().0;
    for i in 0..10 {
        t.translate(i * reach, MemSide::Cpu);
    }
    t.flush();
    t.reset_stats();
    for i in 0..10 {
        t.translate(i * reach, MemSide::Cpu);
    }
    assert_eq!(t.stats().l2_hits, 0, "no hits after a flush");
}

#[test]
fn cpu_latency_hierarchy_is_ordered() {
    let h = hw();
    let t = TlbSim::new(&h);
    use triton_hw::tlb::TlbLevel::*;
    let l2 = t.latency(L2Hit, MemSide::Cpu).0;
    let l3 = t.latency(L3StarHit, MemSide::Cpu).0;
    let miss = t.latency(FullMiss, MemSide::Cpu).0;
    assert!(l2 < l3 && l3 < miss);
    assert!(
        t.latency(L2Hit, MemSide::Gpu).0 < l2,
        "GPU memory is closer"
    );
}

// --- Config modifiers ------------------------------------------------------

#[test]
fn page_size_modifier_scales_reach() {
    let base = HwConfig::ac922().scaled(512);
    let small = base.clone().with_page_size_modeled(64 << 10);
    assert_eq!(
        small.tlb_entry_reach().0,
        base.tlb_entry_reach().0 / 32,
        "64 KiB pages = 1/32 the reach of 2 MiB pages"
    );
    // Entry counts are hardware constants: unchanged.
    assert_eq!(small.gpu_l2_tlb_entries(), base.gpu_l2_tlb_entries());
    // Coverage shrinks with the reach.
    assert_eq!(small.gpu_l2_coverage().0, base.gpu_l2_coverage().0 / 32);
}

#[test]
fn far_numa_modifier_slows_the_link() {
    let near = HwConfig::ac922();
    let far = HwConfig::ac922().with_far_numa();
    assert!(far.link.raw_bw_per_dir.0 < near.link.raw_bw_per_dir.0);
    assert!(far.tlb.cpu_l2_hit_ns > near.tlb.cpu_l2_hit_ns);
    // GPU-local latencies are unaffected.
    assert_eq!(far.tlb.gpu_l2_hit_ns, near.tlb.gpu_l2_hit_ns);
}

#[test]
fn sm_restriction_caps_but_never_raises() {
    let hw = HwConfig::ac922().with_sms(200);
    assert_eq!(hw.gpu.num_sms, 200); // stored as requested...
    let mut k = KernelCost::new("x");
    k.instructions = 1_000_000;
    k.sms = 300; // ...but kernel SMs clamp to the configured count.
    assert_eq!(k.timing(&hw).sms, 200);
}
