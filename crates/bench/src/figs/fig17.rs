//! Fig 17: effect of the first-pass partitioning algorithm on the radix
//! join, with caching disabled to isolate the partitioner.
//!
//! Expected shape (Section 6.2.5): Shared leads up to ~1280 M tuples,
//! then falls off as its flush granularity drops below one 128-byte line;
//! Hierarchical stays flat and degrades gracefully; both dominate Linear
//! and (by 3.6-4x) Standard.

use triton_core::TritonJoin;
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;
use triton_part::Algorithm;

/// One size point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Relation size in modeled M tuples.
    pub m_tuples: u64,
    /// Throughput per algorithm (G tuples/s), in [`Algorithm::all`] order.
    pub gtps: [f64; 4],
}

/// Run the sweep.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    sizes
        .iter()
        .map(|&m| {
            let w = WorkloadSpec::paper_default(m, k).generate();
            let mut gtps = [0.0; 4];
            for (i, alg) in Algorithm::all().into_iter().enumerate() {
                let join = TritonJoin {
                    pass1: alg,
                    caching_enabled: false,
                    ..TritonJoin::default()
                };
                gtps[i] = join.run(&w, hw).throughput_gtps();
            }
            Row { m_tuples: m, gtps }
        })
        .collect()
}

/// Print the figure.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner(
        "Fig 17",
        "partitioning algorithm effect on the radix join (no cache)",
    );
    let mut t = crate::Table::new(["M tuples", "Standard", "Linear", "Shared", "Hierarchical"]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            crate::f3(r.gtps[0]),
            crate::f3(r.gtps[1]),
            crate::f3(r.gtps[2]),
            crate::f3(r.gtps[3]),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_dominates_standard_and_linear() {
        let hw = HwConfig::ac922().scaled(2048);
        for r in run(&hw, &[512, 2048]) {
            let [standard, linear, _shared, hier] = r.gtps;
            assert!(
                hier > linear,
                "{} M: hierarchical {hier} !> linear {linear}",
                r.m_tuples
            );
            assert!(
                hier > standard * 2.0,
                "{} M: hierarchical {hier} vs standard {standard}",
                r.m_tuples
            );
        }
    }

    #[test]
    fn hierarchical_degrades_gracefully() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[128, 2048]);
        let ratio = rows[1].gtps[3] / rows[0].gtps[3];
        // Paper: 1.4-1.5 G tuples/s over the whole range.
        assert!(ratio > 0.6, "hierarchical retention {ratio}");
    }
}
