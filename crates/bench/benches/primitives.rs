//! Criterion microbenchmarks of the simulator's primitives: hash tables,
//! the TLB simulator, the link cost model, and the interleave mapping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use triton_core::{BucketChainTable, LinearProbeTable, PerfectArrayTable};
use triton_datagen::Lcg;
use triton_hw::link::LinkModel;
use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::HwConfig;
use triton_mem::InterleavePattern;

fn bench_hash_tables(c: &mut Criterion) {
    let n = 100_000usize;
    let keys: Vec<u64> = (1..=n as u64).collect();
    let rids: Vec<u64> = keys.iter().map(|k| k * 3).collect();

    let mut g = c.benchmark_group("hash_tables");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("bucket_chain_build", |b| {
        b.iter(|| BucketChainTable::build(&keys, &rids, 2048, 0))
    });
    let bc = BucketChainTable::build(&keys, &rids, 2048, 0);
    g.bench_function("bucket_chain_probe", |b| {
        b.iter(|| keys.iter().map(|&k| bc.probe(k).1 as u64).sum::<u64>())
    });
    g.bench_function("linear_probe_build", |b| {
        b.iter(|| LinearProbeTable::build(&keys, &rids, 0.5))
    });
    let (lp, _) = LinearProbeTable::build(&keys, &rids, 0.5);
    g.bench_function("linear_probe_probe", |b| {
        b.iter(|| keys.iter().map(|&k| lp.probe(k).1 as u64).sum::<u64>())
    });
    let pf = PerfectArrayTable::build(&keys, &rids, n);
    g.bench_function("perfect_probe", |b| {
        b.iter(|| keys.iter().filter_map(|&k| pf.probe(k)).sum::<u64>())
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let hw = HwConfig::ac922().scaled(1024);
    let mut g = c.benchmark_group("tlb_sim");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("translate_thrash", |b| {
        let mut tlb = TlbSim::new(&hw);
        let reach = tlb.entry_reach().0;
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc += tlb.translate(i * reach, MemSide::Cpu) as u64;
            }
            acc
        })
    });
    g.finish();
}

fn bench_link_and_lcg(c: &mut Criterion) {
    let link = LinkModel::new(&HwConfig::ac922().link);
    let mut g = c.benchmark_group("primitives");
    g.bench_function("link_write_at", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for off in (0..100_000u64).step_by(37) {
                acc += link.write_at(off, 48).wire_data_dir.0;
            }
            acc
        })
    });
    g.bench_function("lcg_full_period_16", |b| {
        b.iter(|| Lcg::new(16, 1).take(1 << 16).sum::<u64>())
    });
    g.bench_function("interleave_side_of", |b| {
        let p = InterleavePattern::from_fraction(0.37);
        b.iter(|| {
            (0..100_000u64)
                .filter(|&i| p.side_of_page(i) == MemSide::Gpu)
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hash_tables, bench_tlb, bench_link_and_lcg);
criterion_main!(benches);
