//! Microbenchmarks of the four GPU partitioning algorithms (host-side
//! execution speed of the warp-granular emulation; in-tree harness, see
//! `triton_bench::micro`).

use triton_bench::micro::Group;
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;
use triton_part::{compute_histogram, make_partitioner, Algorithm, PassConfig, Span};

fn bench_partitioners() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(64, 2048).generate();
    let n = w.r.len();
    let bits = 8;
    let hist = compute_histogram(&w.r.keys, 8, bits, 0);
    let pass = PassConfig::new(bits, 0);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    let g = Group::new("partition_fanout_256", n as u64);
    for alg in Algorithm::all() {
        let part = make_partitioner(alg);
        g.bench(alg.name(), || {
            part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw)
        });
    }
}

fn bench_fanout_sweep() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(64, 2048).generate();
    let part = make_partitioner(Algorithm::Hierarchical);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    let g = Group::new("hierarchical_fanout", w.r.len() as u64);
    for bits in [4u32, 8, 11] {
        let hist = compute_histogram(&w.r.keys, 8, bits, 0);
        let pass = PassConfig::new(bits, 0);
        g.bench(&format!("fanout_{}", 1u32 << bits), || {
            part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw)
        });
    }
}

fn main() {
    bench_partitioners();
    bench_fanout_sweep();
}
