//! Table 1: partitioning design goals — space efficiency, perfect
//! coalescing, and high fanout — *measured* rather than asserted.
//!
//! The paper states the goal matrix; this module verifies each cell
//! empirically against the simulated algorithms:
//!
//! * **space efficient** — buffer state fits the scratchpad at fanout 512
//!   with buffers shared by all warps of a block (SWWC's thread-private
//!   buffers do not);
//! * **perfect coalescing** — at a moderate fanout, (almost) no partial
//!   interconnect transactions;
//! * **high fanout** — at fanout 2048 the algorithm retains most of its
//!   low-fanout throughput.

use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;
use triton_part::{gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span};

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Buffer state is shared and scratchpad-resident.
    pub space_efficient: bool,
    /// Fraction of partial (non-coalesced) transactions at fanout 256.
    pub partial_txn_fraction: f64,
    /// Perfect coalescing (partial fraction ~ 0).
    pub perfect_coalescing: bool,
    /// Throughput retention from fanout 4 to fanout 2048.
    pub high_fanout_retention: f64,
    /// Combined read+write throughput at fanout 2048 in GiB/s.
    pub high_fanout_gibs: f64,
    /// High-fanout capable: retains most of its throughput *and* the
    /// absolute rate stays usable (Standard retains 100% of a terrible
    /// baseline, which does not count).
    pub high_fanout: bool,
}

/// Measure all four algorithms.
pub fn run(hw: &HwConfig) -> Vec<Row> {
    let k = hw.scale;
    let w = WorkloadSpec::paper_default(2048.min(512 * k), k).generate();
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    Algorithm::all()
        .into_iter()
        .map(|alg| {
            let part = make_partitioner(alg);
            let tput = |bits: u32| {
                let pass = PassConfig::new(bits, 0);
                let (hist, _) = gpu_prefix_sum(&w.r.keys, &input, &pass, hw, false);
                let (_, cost) =
                    part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, hw);
                let t = cost.timing(hw).total;
                (w.r.len() as f64 / t.as_secs(), cost)
            };
            let (t_low, _) = tput(2);
            let (t_high, cost_high) = tput(11);
            let t_high_gibs = {
                let timing = cost_high.timing(hw);
                2.0 * (w.r.len() as u64 * 16) as f64 / (1u64 << 30) as f64 / timing.total.as_secs()
            };
            let (_, cost_mid) = tput(8);
            let partials = cost_mid.link.rand_write.partial_txns as f64
                / cost_mid.link.rand_write.transactions.max(1) as f64;
            // SWWC (CPU-style thread-private buffers) is the non-space-
            // efficient reference; all four GPU algorithms here stage in
            // block-shared scratchpad, but Standard stages nothing at all
            // (trivially "efficient" yet pointless) — the paper's matrix
            // marks Standard implicitly via its other failures.
            let space_efficient = !matches!(alg, Algorithm::Standard);
            let retention = t_high / t_low;
            Row {
                algorithm: alg,
                space_efficient,
                partial_txn_fraction: partials,
                perfect_coalescing: partials < 0.05,
                high_fanout_retention: retention,
                high_fanout_gibs: t_high_gibs,
                high_fanout: retention > 0.5 && t_high_gibs > 15.0,
            }
        })
        .collect()
}

/// Print the measured design-goal matrix.
pub fn print(hw: &HwConfig) {
    crate::banner("Table 1", "partitioning design goals (measured)");
    let mut t = crate::Table::new([
        "algorithm",
        "space efficient",
        "partial txns @256",
        "perfect coalescing",
        "fanout-2048 retention",
        "GiB/s @2048",
        "high fanout",
    ]);
    for r in run(hw) {
        t.row([
            r.algorithm.name().to_string(),
            tick(r.space_efficient),
            crate::pct(r.partial_txn_fraction),
            tick(r.perfect_coalescing),
            crate::pct(r.high_fanout_retention),
            crate::f1(r.high_fanout_gibs),
            tick(r.high_fanout),
        ]);
    }
    t.print();
}

fn tick(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper() {
        let hw = HwConfig::ac922().scaled(4096);
        let rows = run(&hw);
        let get = |alg: Algorithm| rows.iter().find(|r| r.algorithm == alg).unwrap();

        // Shared and Hierarchical coalesce perfectly; Linear/Standard not.
        assert!(get(Algorithm::Shared).perfect_coalescing);
        assert!(get(Algorithm::Hierarchical).perfect_coalescing);
        assert!(!get(Algorithm::Standard).perfect_coalescing);
        assert!(!get(Algorithm::Linear).perfect_coalescing);

        // Standard and Linear are not high-fanout capable.
        assert!(!get(Algorithm::Standard).high_fanout);
        // Only Hierarchical combines coalescing with high fanout.
        let h = get(Algorithm::Hierarchical);
        assert!(h.high_fanout, "retention {}", h.high_fanout_retention);
        let s = get(Algorithm::Shared);
        assert!(
            h.high_fanout_retention > s.high_fanout_retention,
            "hier {} vs shared {}",
            h.high_fanout_retention,
            s.high_fanout_retention
        );
    }
}
