//! Deterministic fault injection for the simulated machine.
//!
//! The paper's premise (Section 5) is graceful behavior when the join
//! state outgrows GPU memory: spill over NVLink instead of crashing. A
//! serving runtime has to survive more than capacity pressure, though —
//! links degrade or flap, ECC page retirement shrinks usable GPU memory
//! mid-flight, kernels fail transiently, and NUMA placement slows the
//! CPU. This module describes those hazards as a [`FaultPlan`]: a seeded,
//! simulated-clock-driven schedule of [`FaultEvent`]s that an executor
//! (see `triton-exec`) replays against its discrete-event timeline.
//!
//! Everything here is a pure function of the plan: two consumers reading
//! the same plan at the same simulated instants observe byte-identical
//! machine state, which keeps chaos runs replayable for debugging.

use crate::config::{HwConfig, LinkConfig};
use crate::units::{Bytes, BytesPerSec, Ns};

/// SplitMix64: the in-tree bit mixer used to derive deterministic
/// pseudo-random decisions (jitter, victim choice, chaos schedules) from
/// a seed without any external dependency.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit state to a uniform `f64` in `[0, 1)`.
pub fn unit_f64(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A sequential SplitMix64 stream (the generator behind
/// [`FaultPlan::chaos`]).
#[derive(Debug, Clone)]
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// What kind of hardware hazard an event models.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The NVLink's effective bandwidth drops to `factor` of nominal for
    /// the event's window. `factor = 0` is a link flap: no progress for
    /// any transfer crossing the interconnect until the window closes.
    LinkDegrade {
        /// Remaining fraction of nominal bandwidth in `[0, 1]`.
        factor: f64,
    },
    /// ECC page retirement: `bytes` of GPU memory become permanently
    /// unusable at the event time. Capacity loss is cumulative and
    /// forces mid-flight reservation revocation when the reserved sum no
    /// longer fits.
    GpuMemRetire {
        /// Bytes of device memory retired.
        bytes: Bytes,
    },
    /// A transient kernel failure at one instant: the executor aborts
    /// one in-flight GPU query, which may retry (the fault does not
    /// repeat deterministically for the retried work).
    KernelFault,
    /// NUMA misplacement or interference slows the host CPU to `factor`
    /// of nominal for the event's window.
    CpuSlowdown {
        /// Remaining fraction of nominal CPU speed in `(0, 1]`.
        factor: f64,
    },
}

impl FaultKind {
    /// Short label for reports and shed reasons.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDegrade { factor } if *factor <= 0.0 => "link-flap",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::GpuMemRetire { .. } => "ecc-retirement",
            FaultKind::KernelFault => "kernel-fault",
            FaultKind::CpuSlowdown { .. } => "cpu-slowdown",
        }
    }
}

/// One scheduled fault: a kind, a start time, and (for windowed kinds) a
/// duration. Instantaneous kinds (`GpuMemRetire`, `KernelFault`) carry a
/// zero duration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated time the fault begins.
    pub at: Ns,
    /// Window length; `Ns::ZERO` for instantaneous faults.
    pub duration: Ns,
    /// The hazard.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether a windowed event is active at `t` (half-open `[at, at+duration)`).
    fn active_at(&self, t: Ns) -> bool {
        self.duration.0 > 0.0 && t.0 >= self.at.0 && t.0 < self.at.0 + self.duration.0
    }
}

/// A seeded, deterministic schedule of fault events over the simulated
/// clock.
///
/// The plan is data, not behavior: executors query the machine state at
/// any instant ([`Self::link_factor`], [`Self::cpu_factor`],
/// [`Self::retired_through`]) and enumerate the instants where that
/// state changes ([`Self::transitions`]) so a discrete-event loop never
/// steps across a fault boundary.
///
/// ```
/// use triton_hw::{FaultPlan, Bytes, Ns};
/// let plan = FaultPlan::with_seed(7)
///     .degrade_link(Ns::millis(1.0), Ns::millis(2.0), 0.5)
///     .retire_gpu_mem(Ns::millis(2.0), Bytes::mib(4));
/// assert_eq!(plan.link_factor(Ns::millis(1.5)), 0.5);
/// assert_eq!(plan.link_factor(Ns::millis(3.0)), 1.0);
/// assert_eq!(plan.retired_through(Ns::millis(2.0)), Bytes::mib(4));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every pseudo-random decision derived from this plan
    /// (victim selection, retry jitter). Same seed + same events means
    /// byte-identical executions.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a perfect machine.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for downstream jitter/choices.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    fn push(mut self, ev: FaultEvent) -> Self {
        // Keep events sorted by start time (stable for equal times) so
        // every derived view is deterministic.
        let pos = self
            .events
            .iter()
            .position(|e| e.at.0 > ev.at.0)
            .unwrap_or(self.events.len());
        self.events.insert(pos, ev);
        self
    }

    /// Degrade the link to `factor` of nominal bandwidth for `duration`.
    pub fn degrade_link(self, at: Ns, duration: Ns, factor: f64) -> Self {
        self.push(FaultEvent {
            at,
            duration,
            kind: FaultKind::LinkDegrade {
                factor: factor.clamp(0.0, 1.0),
            },
        })
    }

    /// Flap the link: zero effective bandwidth for `duration`.
    pub fn flap_link(self, at: Ns, duration: Ns) -> Self {
        self.degrade_link(at, duration, 0.0)
    }

    /// Permanently retire `bytes` of GPU memory at `at` (ECC page
    /// retirement).
    pub fn retire_gpu_mem(self, at: Ns, bytes: Bytes) -> Self {
        self.push(FaultEvent {
            at,
            duration: Ns::ZERO,
            kind: FaultKind::GpuMemRetire { bytes },
        })
    }

    /// Inject a transient kernel failure at `at`.
    pub fn kernel_fault(self, at: Ns) -> Self {
        self.push(FaultEvent {
            at,
            duration: Ns::ZERO,
            kind: FaultKind::KernelFault,
        })
    }

    /// Slow the host CPU to `factor` of nominal for `duration`.
    pub fn slow_cpu(self, at: Ns, duration: Ns, factor: f64) -> Self {
        self.push(FaultEvent {
            at,
            duration,
            kind: FaultKind::CpuSlowdown {
                factor: factor.clamp(1e-6, 1.0),
            },
        })
    }

    /// A randomized but fully seed-determined fault mix over `[0,
    /// horizon)`: one or two link degradations, possibly a flap, one or
    /// two ECC retirements (each 10-20% of the GPU, at most ~40% total),
    /// a couple of transient kernel faults, and one CPU slowdown.
    pub fn chaos(seed: u64, horizon: Ns, hw: &HwConfig) -> Self {
        let mut s = Stream(seed ^ 0x5DEE_CE66_D1CE_CAFE);
        let h = horizon.0.max(1.0);
        let mut plan = FaultPlan::with_seed(seed);
        let degrades = 1 + (s.next_u64() % 2) as usize;
        for _ in 0..degrades {
            let at = Ns(s.range(0.05, 0.7) * h);
            let dur = Ns(s.range(0.05, 0.3) * h);
            let factor = s.range(0.25, 0.9);
            plan = plan.degrade_link(at, dur, factor);
        }
        if s.unit() < 0.5 {
            let at = Ns(s.range(0.1, 0.7) * h);
            let dur = Ns(s.range(0.01, 0.06) * h);
            plan = plan.flap_link(at, dur);
        }
        let retires = 1 + (s.next_u64() % 2) as usize;
        for _ in 0..retires {
            let at = Ns(s.range(0.15, 0.7) * h);
            let frac = s.range(0.10, 0.20);
            let bytes = hw.gpu.mem_capacity.scaled(frac);
            plan = plan.retire_gpu_mem(at, bytes);
        }
        let kfaults = 1 + (s.next_u64() % 3) as usize;
        for _ in 0..kfaults {
            plan = plan.kernel_fault(Ns(s.range(0.05, 0.85) * h));
        }
        plan = plan.slow_cpu(
            Ns(s.range(0.1, 0.6) * h),
            Ns(s.range(0.05, 0.25) * h),
            s.range(0.4, 0.9),
        );
        plan
    }

    /// All scheduled events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Remaining link-bandwidth fraction at `t`: the product of every
    /// active degradation window (overlapping degradations compound). A
    /// flap anywhere in the stack zeroes the link.
    pub fn link_factor(&self, t: Ns) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                FaultKind::LinkDegrade { factor } => Some(factor),
                FaultKind::GpuMemRetire { .. }
                | FaultKind::KernelFault
                | FaultKind::CpuSlowdown { .. } => None,
            })
            .product()
    }

    /// Remaining host-CPU speed fraction at `t`.
    pub fn cpu_factor(&self, t: Ns) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                FaultKind::CpuSlowdown { factor } => Some(factor),
                FaultKind::LinkDegrade { .. }
                | FaultKind::GpuMemRetire { .. }
                | FaultKind::KernelFault => None,
            })
            .product()
    }

    /// Cumulative GPU bytes retired by ECC events with `at <= t`.
    pub fn retired_through(&self, t: Ns) -> Bytes {
        self.events
            .iter()
            .filter(|e| e.at.0 <= t.0)
            .filter_map(|e| match e.kind {
                FaultKind::GpuMemRetire { bytes } => Some(bytes),
                FaultKind::LinkDegrade { .. }
                | FaultKind::KernelFault
                | FaultKind::CpuSlowdown { .. } => None,
            })
            .sum()
    }

    /// The `(time, bytes)` schedule of ECC retirements, in time order.
    pub fn retirements(&self) -> Vec<(Ns, Bytes)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::GpuMemRetire { bytes } => Some((e.at, bytes)),
                FaultKind::LinkDegrade { .. }
                | FaultKind::KernelFault
                | FaultKind::CpuSlowdown { .. } => None,
            })
            .collect()
    }

    /// The instants of transient kernel faults, in time order.
    pub fn kernel_faults(&self) -> Vec<Ns> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::KernelFault))
            .map(|e| e.at)
            .collect()
    }

    /// Every instant at which the machine state changes (window starts,
    /// window ends, and instantaneous events), sorted and deduplicated.
    /// A discrete-event loop bounds each step by the next transition so
    /// rates stay piecewise-constant.
    pub fn transitions(&self) -> Vec<Ns> {
        let mut ts: Vec<f64> = Vec::with_capacity(self.events.len() * 2);
        for e in &self.events {
            ts.push(e.at.0);
            if e.duration.0 > 0.0 {
                ts.push(e.at.0 + e.duration.0);
            }
        }
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ts.dedup();
        ts.into_iter().map(Ns).collect()
    }

    /// Effective link bandwidth per direction at `t`, given a nominal
    /// [`LinkConfig`].
    pub fn effective_link_bw(&self, link: &LinkConfig, t: Ns) -> BytesPerSec {
        link.raw_bw_per_dir * self.link_factor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;

    #[test]
    fn windows_are_half_open_and_compound() {
        let p = FaultPlan::with_seed(1)
            .degrade_link(Ns(10.0), Ns(10.0), 0.5)
            .degrade_link(Ns(15.0), Ns(10.0), 0.5);
        assert_eq!(p.link_factor(Ns(9.9)), 1.0);
        assert_eq!(p.link_factor(Ns(10.0)), 0.5);
        assert_eq!(p.link_factor(Ns(15.0)), 0.25, "overlap compounds");
        assert_eq!(p.link_factor(Ns(20.0)), 0.5, "first window closed");
        assert_eq!(p.link_factor(Ns(25.0)), 1.0);
    }

    #[test]
    fn flap_zeroes_the_link() {
        let p = FaultPlan::with_seed(2).flap_link(Ns(5.0), Ns(5.0));
        assert_eq!(p.link_factor(Ns(7.0)), 0.0);
        assert_eq!(p.link_factor(Ns(10.0)), 1.0);
    }

    #[test]
    fn retirement_is_cumulative_and_permanent() {
        let p = FaultPlan::with_seed(3)
            .retire_gpu_mem(Ns(10.0), Bytes(100))
            .retire_gpu_mem(Ns(20.0), Bytes(50));
        assert_eq!(p.retired_through(Ns(5.0)), Bytes(0));
        assert_eq!(p.retired_through(Ns(10.0)), Bytes(100));
        assert_eq!(p.retired_through(Ns(1e9)), Bytes(150));
        assert_eq!(p.retirements().len(), 2);
    }

    #[test]
    fn transitions_cover_all_boundaries_sorted() {
        let p = FaultPlan::with_seed(4)
            .degrade_link(Ns(30.0), Ns(10.0), 0.5)
            .kernel_fault(Ns(5.0))
            .retire_gpu_mem(Ns(40.0), Bytes(1));
        let ts: Vec<f64> = p.transitions().iter().map(|t| t.0).collect();
        assert_eq!(ts, vec![5.0, 30.0, 40.0]);
    }

    #[test]
    fn chaos_is_seed_deterministic() {
        let hw = HwConfig::ac922().scaled(512);
        let a = FaultPlan::chaos(99, Ns::millis(10.0), &hw);
        let b = FaultPlan::chaos(99, Ns::millis(10.0), &hw);
        let c = FaultPlan::chaos(100, Ns::millis(10.0), &hw);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        // Retirements stay within the generator's documented bound.
        let total = a.retired_through(Ns::millis(10.0));
        assert!(total.0 <= hw.gpu.mem_capacity.0 * 2 / 5 + 1);
    }

    #[test]
    fn events_sorted_by_time() {
        let p = FaultPlan::with_seed(5)
            .kernel_fault(Ns(50.0))
            .kernel_fault(Ns(10.0))
            .kernel_fault(Ns(30.0));
        let at: Vec<f64> = p.events().iter().map(|e| e.at.0).collect();
        assert_eq!(at, vec![10.0, 30.0, 50.0]);
    }

    #[test]
    fn splitmix_unit_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(i);
            assert!((0.0..1.0).contains(&u));
        }
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
