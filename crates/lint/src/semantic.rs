//! The flow-aware rule families that run over the parsed AST: cost
//! fidelity (F1/F2), grant lifecycle (L1/L2), and match exhaustiveness
//! over invariant-bearing enums (E1).
//!
//! All three families use the same deliberately simple machinery: a
//! linear, per-function event stream of let-bindings and identifier
//! uses (no control-flow graph, no type inference). That approximation
//! is documented in DESIGN.md §13; the short version is that a binding
//! counts as *consumed* by any later occurrence, so the rules flag only
//! the unambiguous failure shapes — a resource result discarded in
//! statement position, bound to `_`, or bound to a name that is never
//! mentioned again.

use crate::parser::{Ast, Expr, FnItem, Stmt};
use crate::rules::{Finding, Rule};

/// Enums whose variants encode cross-crate invariants: adding a variant
/// must force every `match` site to be reviewed, so `_` wildcard arms
/// over them are banned in library crates (rule E1).
pub const INVARIANT_ENUMS: [&str; 5] = [
    "FaultKind",
    "RejectReason",
    "GrantRevision",
    "PlanNode",
    "EventKind",
];

/// Methods whose results carry an admission grant that must reach
/// `release`/`retire` (or be handed off) on every path.
const GRANT_OPENERS: [&str; 2] = ["try_admit", "try_admit_shrunk"];

/// `SimAllocator` methods whose results carry a live allocation. The
/// receiver chain must mention `alloc` (`self.alloc.…`, `allocator.…`)
/// so `Vec::resize` and friends stay invisible.
const ALLOC_OPENERS: [&str; 5] = [
    "alloc",
    "alloc_hybrid",
    "alloc_hybrid_with",
    "alloc_hybrid_planned",
    "resize",
];

/// Methods that price a `KernelCost` through the roofline model; a cost
/// that accrues link traffic must reach one of these or escape the
/// function.
const PRICING_METHODS: [&str; 1] = ["timing"];

/// Run every semantic rule that `enabled` admits over the parsed file.
/// `enabled` receives each rule exactly once; findings append to `out`.
pub fn run(ast: &Ast, enabled: impl Fn(Rule) -> bool, out: &mut Vec<Finding>) {
    let f1 = enabled(Rule::F1);
    let f2 = enabled(Rule::F2);
    let l1 = enabled(Rule::L1);
    let l2 = enabled(Rule::L2);
    let e1 = enabled(Rule::E1);
    if !(f1 || f2 || l1 || l2 || e1) {
        return;
    }
    for func in &ast.fns {
        if func.is_test {
            continue;
        }
        if f1 || e1 {
            walk_fn_exprs(func, &mut |e| {
                if f1 {
                    rule_f1(e, out);
                }
                if e1 {
                    rule_e1(e, out);
                }
            });
        }
        if f2 || l1 || l2 {
            let events = collect_events(func);
            if f2 {
                rule_f2(&events, out);
            }
            if l1 {
                rule_l(&events, Family::Grant, out);
            }
            if l2 {
                rule_l(&events, Family::Alloc, out);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Expression walking
// ---------------------------------------------------------------------

fn walk_fn_exprs(func: &FnItem, visit: &mut impl FnMut(&Expr)) {
    for s in &func.stmts {
        walk_stmt(s, visit);
    }
}

fn walk_stmt(stmt: &Stmt, visit: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::Let { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, visit);
            }
        }
        Stmt::Expr { expr, .. } => walk_expr(expr, visit),
    }
}

fn walk_expr(e: &Expr, visit: &mut impl FnMut(&Expr)) {
    visit(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, visit);
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, visit);
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, visit),
        Expr::Struct { fields, rest, .. } => {
            for (_, v) in fields {
                walk_expr(v, visit);
            }
            if let Some(r) = rest {
                walk_expr(r, visit);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, visit);
            for arm in arms {
                walk_expr(&arm.body, visit);
            }
        }
        Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        Expr::Try { expr, .. } => walk_expr(expr, visit),
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, visit);
            }
        }
        Expr::Block { stmts, .. } => {
            for s in stmts {
                walk_stmt(s, visit);
            }
        }
        Expr::Opaque { children, .. } => {
            for c in children {
                walk_expr(c, visit);
            }
        }
    }
}

// ---------------------------------------------------------------------
// F1 — literal-fed report fields
// ---------------------------------------------------------------------

/// Does the expression tree contain a non-zero numeric literal? Zero
/// (`Ns(0.0)`, `Bytes(0)`) is a legitimate "nothing happened" value;
/// anything else in a report's time/total field is an unpriced number.
fn has_nonzero_literal(e: &Expr) -> bool {
    let mut found = false;
    walk_expr(e, &mut |x| {
        if let Expr::Lit { kind, text, .. } = x {
            if matches!(
                kind,
                crate::lexer::TokKind::Int | crate::lexer::TokKind::Float
            ) && text.chars().any(|c| c.is_ascii_digit() && c != '0')
            {
                found = true;
            }
        }
    });
    found
}

fn rule_f1(e: &Expr, out: &mut Vec<Finding>) {
    match e {
        // `PhaseReport::cpu(name, <literal time>)`
        Expr::Call { callee, args, line } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let is_cpu_ctor = segs.len() >= 2
                    && segs[segs.len() - 2] == "PhaseReport"
                    && segs[segs.len() - 1] == "cpu";
                if is_cpu_ctor && args.get(1).is_some_and(has_nonzero_literal) {
                    push(
                        out,
                        Rule::F1,
                        *line,
                        "PhaseReport::cpu(..) fed a literal time; derive the Ns from a \
                         KernelCost/LinkTraffic priced through crates/hw so the phase \
                         stays on the cost model"
                            .to_string(),
                    );
                }
            }
        }
        // `PhaseReport { time: <literal>, .. }` / `JoinReport { total: <literal>, .. }`
        Expr::Struct { segs, fields, .. } => {
            let last = segs.last().map(String::as_str).unwrap_or("");
            let checked_field = match last {
                "PhaseReport" => "time",
                "JoinReport" => "total",
                _ => return,
            };
            for (name, value) in fields {
                if name == checked_field && has_nonzero_literal(value) {
                    push(
                        out,
                        Rule::F1,
                        value.line(),
                        format!(
                            "{last} {{ {checked_field}: .. }} fed a literal; report times \
                             must come from priced KernelCost/LinkTraffic values"
                        ),
                    );
                }
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// E1 — wildcard arms over invariant enums
// ---------------------------------------------------------------------

fn rule_e1(e: &Expr, out: &mut Vec<Finding>) {
    let Expr::Match { arms, .. } = e else {
        return;
    };
    let named_enum = arms.iter().find_map(|a| {
        a.pat
            .path_roots
            .iter()
            .find(|r| INVARIANT_ENUMS.contains(&r.as_str()))
    });
    let Some(enum_name) = named_enum else {
        return;
    };
    for arm in arms {
        if arm.pat.is_wildcard {
            push(
                out,
                Rule::E1,
                arm.pat.line,
                format!(
                    "`_` arm in a match over {enum_name}; list the remaining variants \
                     explicitly so adding a variant forces this site to be reviewed"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Per-function event stream (shared by F2/L1/L2)
// ---------------------------------------------------------------------

/// Which resource family a binding carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Admission grant (`try_admit`/`try_admit_shrunk` result).
    Grant,
    /// Allocator handle (`SimAllocator::{alloc*,resize}` result).
    Alloc,
    /// `KernelCost` under construction.
    Cost,
}

impl Family {
    fn rule(self) -> Rule {
        match self {
            Family::Grant => Rule::L1,
            Family::Alloc => Rule::L2,
            Family::Cost => Rule::F2,
        }
    }

    fn noun(self) -> &'static str {
        match self {
            Family::Grant => "admission grant",
            Family::Alloc => "allocation handle",
            Family::Cost => "KernelCost",
        }
    }
}

/// How an identifier occurrence relates to the binding it names.
#[derive(Debug, Clone, PartialEq, Eq)]
enum UseKind {
    /// Written through (`x.f = …`, `x.f.g += …`); carries the field path.
    Mutated(Vec<String>),
    /// Read through a field chain with no call (`x.f.g`).
    FieldRead,
    /// Direct receiver of a method call; carries the method name.
    MethodRecv(String),
    /// Any other occurrence: argument, return value, struct field,
    /// match scrutinee — the value escapes this function's bookkeeping.
    Consumed,
}

#[derive(Debug)]
enum Event {
    Bind {
        name: Option<String>,
        family: Family,
        line: u32,
        /// `let _ = …` — deliberate discard.
        discard: bool,
    },
    Use {
        name: String,
        kind: UseKind,
    },
    /// A resource-producing call whose value is dropped in statement
    /// position (`ac.try_admit(..);`, `ac.try_admit(..)?;`).
    DroppedResult {
        family: Family,
        line: u32,
    },
    /// A `return`/`?` boundary: bindings created before it may release
    /// on a path this linear scan cannot see, so they are exempt only
    /// when used later — this event exists to keep ordering honest but
    /// carries no extra logic today.
    Boundary,
}

fn collect_events(func: &FnItem) -> Vec<Event> {
    let mut ev = Vec::new();
    let n = func.stmts.len();
    for (i, s) in func.stmts.iter().enumerate() {
        event_stmt(s, i + 1 == n, &mut ev);
    }
    ev
}

fn event_stmt(stmt: &Stmt, is_tail: bool, ev: &mut Vec<Event>) {
    match stmt {
        Stmt::Let {
            name,
            discard,
            init,
            line,
        } => {
            if let Some(init) = init {
                event_expr(init, ev);
                if let Some(family) = spine_resource(init) {
                    ev.push(Event::Bind {
                        name: name.clone(),
                        family,
                        line: *line,
                        discard: *discard,
                    });
                }
            }
        }
        Stmt::Expr { expr, semi } => {
            event_expr(expr, ev);
            let dropped = *semi || !is_tail;
            if dropped {
                if let Some(family) = spine_resource(expr) {
                    ev.push(Event::DroppedResult {
                        family,
                        line: expr.line(),
                    });
                }
            }
        }
    }
}

/// Emit `Use` events for every identifier occurrence in `e`, classified
/// by how the occurrence treats the named binding.
fn event_expr(e: &Expr, ev: &mut Vec<Event>) {
    emit_uses(e, Ctx::Value, ev);
}

#[derive(Clone)]
enum Ctx {
    Value,
    FieldRead,
    MethodRecv(String),
    AssignTarget(Vec<String>),
}

fn emit_uses(e: &Expr, ctx: Ctx, ev: &mut Vec<Event>) {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => {
            let name = &segs[0];
            let local_like = name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
            if local_like {
                let kind = match ctx {
                    Ctx::Value => UseKind::Consumed,
                    Ctx::FieldRead => UseKind::FieldRead,
                    Ctx::MethodRecv(m) => UseKind::MethodRecv(m),
                    Ctx::AssignTarget(path) => UseKind::Mutated(path),
                };
                ev.push(Event::Use {
                    name: name.clone(),
                    kind,
                });
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } => {}
        Expr::Field { recv, name, .. } => {
            let inner = match ctx {
                Ctx::AssignTarget(mut path) => {
                    path.push(name.clone());
                    Ctx::AssignTarget(path)
                }
                // Reading or calling through a field: the root binding
                // is only *accessed*, not consumed.
                _ => Ctx::FieldRead,
            };
            emit_uses(recv, inner, ev);
        }
        Expr::Method {
            recv, name, args, ..
        } => {
            emit_uses(recv, Ctx::MethodRecv(name.clone()), ev);
            for a in args {
                emit_uses(a, Ctx::Value, ev);
            }
        }
        Expr::Call { callee, args, .. } => {
            emit_uses(callee, Ctx::Value, ev);
            for a in args {
                emit_uses(a, Ctx::Value, ev);
            }
        }
        Expr::Struct { fields, rest, .. } => {
            for (_, v) in fields {
                emit_uses(v, Ctx::Value, ev);
            }
            if let Some(r) = rest {
                emit_uses(r, Ctx::Value, ev);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            emit_uses(scrutinee, Ctx::Value, ev);
            for arm in arms {
                emit_uses(&arm.body, Ctx::Value, ev);
            }
        }
        Expr::Assign { lhs, rhs, .. } => {
            emit_uses(lhs, Ctx::AssignTarget(Vec::new()), ev);
            emit_uses(rhs, Ctx::Value, ev);
        }
        Expr::Binary { lhs, rhs, .. } => {
            emit_uses(lhs, Ctx::Value, ev);
            emit_uses(rhs, Ctx::Value, ev);
        }
        Expr::Try { expr, .. } => {
            emit_uses(expr, ctx, ev);
            ev.push(Event::Boundary);
        }
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                emit_uses(v, Ctx::Value, ev);
            }
            ev.push(Event::Boundary);
        }
        Expr::Block { stmts, .. } => {
            let n = stmts.len();
            for (i, s) in stmts.iter().enumerate() {
                event_stmt(s, i + 1 == n, ev);
            }
        }
        Expr::Opaque { children, .. } => {
            for c in children {
                emit_uses(c, Ctx::Value, ev);
            }
        }
    }
}

/// Does the value this expression produces come from a resource-opening
/// call on its *spine* (receiver/callee chain, not arguments)? Returns
/// the family whose handle would be dropped if the value is discarded.
fn spine_resource(e: &Expr) -> Option<Family> {
    match e {
        Expr::Method { recv, name, .. } => {
            if GRANT_OPENERS.contains(&name.as_str()) {
                return Some(Family::Grant);
            }
            if ALLOC_OPENERS.contains(&name.as_str()) && recv_mentions_alloc(recv) {
                return Some(Family::Alloc);
            }
            spine_resource(recv)
        }
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.len() >= 2
                    && segs[segs.len() - 2] == "KernelCost"
                    && segs[segs.len() - 1] == "new"
                {
                    return Some(Family::Cost);
                }
            }
            spine_resource(callee)
        }
        Expr::Field { recv, .. } => spine_resource(recv),
        Expr::Try { expr, .. } => spine_resource(expr),
        _ => None,
    }
}

/// Does the receiver chain of an alloc-family call actually look like an
/// allocator (`self.alloc.…`, `allocator.resize(..)`)? Keeps `Vec::resize`
/// and other same-named methods out of L2.
fn recv_mentions_alloc(recv: &Expr) -> bool {
    match recv {
        Expr::Path { segs, .. } => segs
            .last()
            .is_some_and(|s| s.contains("alloc") || s.contains("allocator")),
        Expr::Field { recv, name, .. } => name.contains("alloc") || recv_mentions_alloc(recv),
        Expr::Method { recv, .. } | Expr::Try { expr: recv, .. } => recv_mentions_alloc(recv),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// L1/L2 — grant & allocation lifecycle
// ---------------------------------------------------------------------

fn rule_l(events: &[Event], family: Family, out: &mut Vec<Finding>) {
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::DroppedResult { family: f, line } if *f == family => {
                push(
                    out,
                    family.rule(),
                    *line,
                    format!(
                        "{} result discarded in statement position; bind it and make \
                         sure it reaches release/retire (or is handed off) on every path",
                        family.noun()
                    ),
                );
            }
            Event::Bind {
                name,
                family: f,
                line,
                discard,
            } if *f == family => {
                if *discard {
                    push(
                        out,
                        family.rule(),
                        *line,
                        format!(
                            "{} bound to `_`; the handle leaks the moment it is dropped — \
                             bind it and route it to release/retire",
                            family.noun()
                        ),
                    );
                    continue;
                }
                let Some(name) = name else {
                    // Multi-binding destructuring: too ambiguous to track.
                    continue;
                };
                if !used_later(events, i, name) {
                    push(
                        out,
                        family.rule(),
                        *line,
                        format!(
                            "{} bound to `{name}` but `{name}` is never used again; \
                             the handle never reaches release/retire or any hand-off",
                            family.noun()
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Is `name` mentioned (in any way) after event index `i`, before being
/// rebound? A later rebinding without an intervening use means the first
/// handle was dropped on the floor.
fn used_later(events: &[Event], i: usize, name: &str) -> bool {
    for ev in &events[i + 1..] {
        match ev {
            Event::Use { name: n, .. } if n == name => return true,
            Event::Bind { name: Some(n), .. } if n == name => return false,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------
// F2 — link traffic accrued but never priced
// ---------------------------------------------------------------------

fn rule_f2(events: &[Event], out: &mut Vec<Finding>) {
    for (i, ev) in events.iter().enumerate() {
        let Event::Bind {
            name: Some(name),
            family: Family::Cost,
            line,
            discard: false,
        } = ev
        else {
            continue;
        };
        let mut touches_link = false;
        let mut priced_or_escapes = false;
        for later in &events[i + 1..] {
            match later {
                Event::Bind { name: Some(n), .. } if n == name => break,
                Event::Use { name: n, kind } if n == name => match kind {
                    UseKind::Mutated(path) => {
                        if path.iter().any(|f| f == "link") {
                            touches_link = true;
                        }
                    }
                    UseKind::FieldRead => {}
                    UseKind::MethodRecv(m) => {
                        // Any method call prices it (`.timing(hw)`) or at
                        // least inspects it; only pricing and escapes
                        // count as settling the traffic.
                        if PRICING_METHODS.contains(&m.as_str()) {
                            priced_or_escapes = true;
                        }
                    }
                    UseKind::Consumed => priced_or_escapes = true,
                },
                _ => {}
            }
        }
        if touches_link && !priced_or_escapes {
            push(
                out,
                Rule::F2,
                *line,
                format!(
                    "KernelCost `{name}` accrues `.link` traffic but is never priced \
                     (`.timing(hw)`) and never escapes this function; the transfer \
                     would go uncharged"
                ),
            );
        }
    }
}

fn push(out: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
    out.push(Finding {
        rule,
        line,
        message,
        waived: None,
    });
}
