//! # triton-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (Section 6), each exposing a typed `run(...)` function that
//! regenerates the figure's rows over the simulated hardware, plus a
//! printer. Thin binaries under `src/bin/` drive them; integration tests
//! call the same functions and assert the paper's shapes.
//!
//! All experiments honour the `TRITON_SCALE` environment variable (the
//! capacity scale factor K; default 512). Axis labels stay in the paper's
//! units — "128 M tuples" runs `128 M / K` actual tuples against
//! capacities divided by K, which the scaling argument in `triton-hw`
//! makes throughput-equivalent.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod figs;
pub mod json;
pub mod micro;

use triton_hw::HwConfig;

/// Default capacity scale factor for bench binaries.
pub const DEFAULT_SCALE: u64 = 512;

/// Read the scale factor from `TRITON_SCALE` (default [`DEFAULT_SCALE`]).
pub fn scale() -> u64 {
    std::env::var("TRITON_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k| k >= 1)
        .unwrap_or(DEFAULT_SCALE)
}

/// The scaled AC922 configuration used by all experiments.
pub fn hw() -> HwConfig {
    HwConfig::ac922().scaled(scale())
}

/// Fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.headers.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Print an experiment banner.
pub fn banner(name: &str, what: &str) {
    println!("\n=== {name} — {what}");
    println!(
        "    (scale K = {}, paper-axis units; see DESIGN.md for the scaling argument)\n",
        scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn scale_default() {
        if std::env::var("TRITON_SCALE").is_err() {
            assert_eq!(scale(), DEFAULT_SCALE);
        }
    }
}
