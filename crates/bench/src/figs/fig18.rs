//! Fig 18: profiling the partitioning algorithms with hardware counters
//! while sweeping the fanout from 4 to 2048 over ~60 GiB of data.
//!
//! Six panels: (a) throughput, (b) tuples per memory transaction,
//! (c) physical transfer volume (protocol overhead), (d) IOMMU requests
//! per tuple, (e) issue-slot utilisation, (f) stall reasons.

use triton_core::TritonJoin;
use triton_datagen::{WorkloadSpec, TUPLE_BYTES};
use triton_hw::kernel::StallProfile;
use triton_hw::HwConfig;
use triton_part::{gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span};

/// One (algorithm, fanout) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Partitioning algorithm.
    pub algorithm: Algorithm,
    /// Fanout (number of partitions).
    pub fanout: usize,
    /// Combined read+write throughput in GiB/s (panel a).
    pub gibs: f64,
    /// Tuples per interconnect transaction (panel b).
    pub tuples_per_txn: f64,
    /// Total wire volume divided by the 2x-relation reference (panel c).
    pub transfer_ratio: f64,
    /// IOMMU translation requests per tuple (panel d).
    pub iommu_requests_per_tuple: f64,
    /// Issue-slot utilisation percent (panel e).
    pub issue_slot_util: f64,
    /// Stall profile (panel f).
    pub stalls: StallProfile,
}

/// The paper's fanout axis.
pub const FANOUTS: [u32; 6] = [2, 4, 6, 8, 10, 11]; // radix bits: 4..2048

/// Run the sweep. `m_tuples` defaults to ~60 GiB of data (3840 M tuples).
pub fn run(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let mut spec = WorkloadSpec::paper_default(m_tuples, k);
    spec.s_tuples_modeled = 1; // only one relation is partitioned
    let w = spec.generate();
    let n = w.r.len() as u64;
    let bytes = n * TUPLE_BYTES;
    let gib = (1u64 << 30) as f64;
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    let mut rows = Vec::new();
    for alg in Algorithm::all() {
        let part = make_partitioner(alg);
        for bits in FANOUTS {
            let pass = PassConfig::new(bits, 0);
            let (hist, _) = gpu_prefix_sum(&w.r.keys, &input, &pass, hw, false);
            let (_, cost) = part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, hw);
            let timing = cost.timing(hw);
            let link = triton_hw::LinkModel::new(&hw.link);
            let wire = cost.link.wire_cpu_to_gpu(&link).0 + cost.link.wire_gpu_to_cpu(&link).0;
            rows.push(Row {
                algorithm: alg,
                fanout: pass.fanout(),
                gibs: 2.0 * bytes as f64 / gib / timing.total.as_secs(),
                tuples_per_txn: cost.tuples_per_txn(),
                transfer_ratio: wire as f64 / (2 * bytes) as f64,
                iommu_requests_per_tuple: cost.tlb.full_misses as f64 * hw.tlb.requests_per_walk
                    / n as f64,
                issue_slot_util: StallProfile::from_timing(&cost, &timing, hw).instr_issued,
                stalls: StallProfile::from_timing(&cost, &timing, hw),
            });
        }
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_tuples: u64) {
    crate::banner(
        "Fig 18",
        "profiling the partitioning algorithms vs fanout (~60 GiB)",
    );
    let mut t = crate::Table::new([
        "algorithm",
        "fanout",
        "GiB/s",
        "tuples/txn",
        "wire/2xdata",
        "IOMMU req/tuple",
        "issue%",
        "mem-dep%",
        "sync%",
    ]);
    for r in run(hw, m_tuples) {
        t.row([
            r.algorithm.name().to_string(),
            r.fanout.to_string(),
            crate::f1(r.gibs),
            format!("{:.2}", r.tuples_per_txn),
            format!("{:.2}", r.transfer_ratio),
            format!("{:.2e}", r.iommu_requests_per_tuple),
            crate::f1(r.issue_slot_util),
            crate::f1(r.stalls.memory_dep),
            crate::f1(r.stalls.sync),
        ]);
    }
    t.print();
    let _ = TritonJoin::default(); // (referenced for doc linkage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        let hw = HwConfig::ac922().scaled(4096);
        run(&hw, 3840)
    }

    fn get(rows: &[Row], alg: Algorithm, fanout: usize) -> &Row {
        rows.iter()
            .find(|r| r.algorithm == alg && r.fanout == fanout)
            .unwrap()
    }

    #[test]
    fn hierarchical_scales_to_high_fanout() {
        let rows = rows();
        let h_low = get(&rows, Algorithm::Hierarchical, 4);
        let h_high = get(&rows, Algorithm::Hierarchical, 2048);
        // Paper: 38.3 GiB/s even at fanout 2048 (vs ~50 at low fanouts).
        assert!(
            h_high.gibs > 0.6 * h_low.gibs,
            "hierarchical: {} -> {}",
            h_low.gibs,
            h_high.gibs
        );
        let s_high = get(&rows, Algorithm::Shared, 2048);
        assert!(h_high.gibs > 1.5 * s_high.gibs, "vs shared {}", s_high.gibs);
    }

    #[test]
    fn shared_and_hierarchical_coalesce_perfectly_at_moderate_fanout() {
        let rows = rows();
        for alg in [Algorithm::Shared, Algorithm::Hierarchical] {
            let r = get(&rows, alg, 64);
            assert!(r.tuples_per_txn > 6.0, "{alg:?}: {}", r.tuples_per_txn);
        }
        // Linear only partially coalesces; Standard not at all.
        let lin = get(&rows, Algorithm::Linear, 2048);
        assert!(lin.tuples_per_txn < 4.0, "linear: {}", lin.tuples_per_txn);
        let std_ = get(&rows, Algorithm::Standard, 64);
        assert!(
            std_.tuples_per_txn <= 1.0,
            "standard: {}",
            std_.tuples_per_txn
        );
    }

    #[test]
    fn protocol_overhead_shape() {
        let rows = rows();
        // Paper 18c: Linear's overhead reaches 156% of the transfer
        // volume; Hierarchical stays below 43%.
        let lin = get(&rows, Algorithm::Linear, 2048);
        let hier = get(&rows, Algorithm::Hierarchical, 2048);
        assert!(lin.transfer_ratio > hier.transfer_ratio * 1.3);
        assert!(
            hier.transfer_ratio < 1.6,
            "hier wire ratio {}",
            hier.transfer_ratio
        );
    }

    #[test]
    fn iommu_requests_hierarchy() {
        let rows = rows();
        let std_ = get(&rows, Algorithm::Standard, 2048).iommu_requests_per_tuple;
        let shared = get(&rows, Algorithm::Shared, 2048).iommu_requests_per_tuple;
        let hier = get(&rows, Algorithm::Hierarchical, 2048).iommu_requests_per_tuple;
        // Paper 18d: at fanout 2048 Hierarchical achieves 1436x, 100x and
        // 771x lower miss rates than Standard/Linear/Shared.
        assert!(std_ > hier * 20.0, "standard {std_} vs hier {hier}");
        assert!(shared > hier * 4.0, "shared {shared} vs hier {hier}");
    }

    #[test]
    fn hierarchical_compute_rises_at_high_fanout() {
        let rows = rows();
        let low = get(&rows, Algorithm::Hierarchical, 4).issue_slot_util;
        let high = get(&rows, Algorithm::Hierarchical, 2048).issue_slot_util;
        // Paper 18e: utilisation below ~5% except Hierarchical reaching
        // ~43% at high fanouts.
        assert!(high > low, "issue util: {low} -> {high}");
    }
}
