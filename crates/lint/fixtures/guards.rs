// Fixture: every trigger word in a position the lexer must see through.
/// Doc comment naming HashMap, Instant, rayon, unwrap, panic! — prose.
pub fn guarded<'a>(s: &'a str) -> String {
    let block = /* HashMap in a block comment */ s;
    let s1 = "HashMap, Instant::now(), thread::spawn, .unwrap(), panic!";
    let s2 = r#"SystemTime and rayon in a raw string: x.0 as f64 == 0.0"#;
    let escaped = "escaped quote \" then HashSet";
    let ch = '"';
    let byte = b'x';
    let lifetime_not_char: &'static str = "fine";
    format!("{block}{s1}{s2}{escaped}{ch}{byte}{lifetime_not_char}")
}

#[cfg(test)]
mod tests {
    use std::collections::{HashMap, HashSet};
    use std::time::{Instant, SystemTime};

    #[test]
    fn everything_is_allowed_in_test_code() {
        let _m: HashMap<u64, u64> = HashMap::new();
        let _s: HashSet<u64> = HashSet::new();
        let _t = (Instant::now(), SystemTime::now());
        let _h = std::thread::spawn(|| 1.0f64 == 1.0).join().unwrap();
        let x = (3u64, 4u64);
        let _y = x.0 as f64;
    }
}
