//! Serving sweep: offered load vs. delivered throughput and p50/p99
//! latency for the multi-query scheduler (`triton-exec`), with
//! admission control, deadline shedding, and build-side sharing.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::serve_load::print(&hw, &triton_bench::figs::serve_load::LOAD_AXIS);
}
