//! Memoized operator pricing for the serving hot path.
//!
//! Admission prices every query by *running* its operator functionally
//! ([`crate::query::Operator::run`]) — a pure function of the granted
//! operator configuration, the workload's relation data, and the (fixed)
//! hardware model. Repeat tenants therefore re-derive byte-identical
//! [`JoinReport`]s on every arrival. The [`CostCache`] memoizes those
//! reports keyed by a 128-bit fingerprint of `(workload signature,
//! granted operator)`, so a hit skips partitioning, planning, and the
//! roofline entirely while remaining semantically transparent: the
//! served report is a clone of the one the miss computed.
//!
//! # Key and invalidation
//!
//! The fingerprint hashes the *actual relation columns* (two probe
//! batches share `R` and a spec but differ in `S`, and must not
//! collide), the workload spec, and the granted operator's full
//! configuration (cache grant included — the same query under a
//! different grant runs a different placement). Plan operators bypass
//! the cache: their inputs live in the plan itself and their footprint
//! analyses are memoized separately
//! ([`triton_plan::FootprintCache`]). Only successful runs are cached —
//! an OOM depends on the grant under which it happened and must be
//! re-observed, never replayed. ECC retirement flushes the cache
//! wholesale: the capacity change alters future *grants*, not cached
//! results, but a flush is cheap and keeps the invalidation story
//! uniform (see DESIGN.md §15).

use std::collections::{BTreeMap, VecDeque};

use triton_core::JoinReport;

use crate::admission::{operator_with_grant, Reservation};
use crate::query::{JoinQuery, Operator};

/// 128-bit fingerprint identifying `(workload, granted operator)`.
pub type CostKey = (u64, u64);

/// Bounded memo of operator pricing runs; see the module docs.
#[derive(Debug, Default)]
pub struct CostCache {
    enabled: bool,
    entries: BTreeMap<CostKey, JoinReport>,
    order: VecDeque<CostKey>,
    /// Pricings served from the memo.
    pub hits: u64,
    /// Pricings that ran the operator.
    pub misses: u64,
}

/// Entry bound: far above any realistic distinct-tenant population; a
/// runaway stream of unique workloads evicts in insertion order.
const COST_CACHE_CAP: usize = 512;

impl CostCache {
    /// New cache; when `enabled` is false every lookup misses silently
    /// (no counters move) and nothing is stored, so the disabled path is
    /// byte-identical to the pre-cache scheduler.
    pub fn new(enabled: bool) -> Self {
        CostCache {
            enabled,
            ..CostCache::default()
        }
    }

    /// Whether the memo is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fingerprint a query under its grant; `None` when this query's
    /// pricing is not cacheable (plan operators).
    ///
    /// The relation columns dominate the input, so they are mixed a
    /// whole `u64` lane at a time (a splitmix-style multiply-xorshift
    /// per word and lane) — fingerprinting must stay well under the
    /// pricing run it can replace, or the memo would cost more than it
    /// saves on sustained load.
    pub fn key(query: &JoinQuery, granted: &Operator) -> Option<CostKey> {
        if matches!(query.op, Operator::Plan(_)) {
            return None;
        }
        #[inline]
        fn mix(h: u64, v: u64) -> u64 {
            let x = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^ (x >> 29)
        }
        let mut lo = 0xcbf2_9ce4_8422_2325u64;
        let mut hi = 0x6c62_272e_07bb_0142u64;
        let mut eat_u64s = |vals: &[u64]| {
            // Length first: concatenation across columns cannot alias.
            lo = mix(lo, vals.len() as u64);
            hi = mix(hi, (vals.len() as u64).rotate_left(17));
            for &v in vals {
                lo = mix(lo, v);
                hi = mix(hi, v.rotate_left(17));
            }
        };
        let w = &query.workload;
        eat_u64s(&w.r.keys);
        eat_u64s(&w.r.rids);
        eat_u64s(&w.s.keys);
        eat_u64s(&w.s.rids);
        // The granted operator's debug encoding covers every field that
        // shapes execution (algorithms, hash scheme, skew and elastic
        // policies, and the grant-dependent cache budget), and the spec
        // covers the modeled-scale factors the report echoes. Short
        // strings: byte-at-a-time FNV is fine here.
        for byte in format!("{:?}|{:?}", granted, w.spec).bytes() {
            lo = (lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            hi = (hi ^ u64::from(byte).rotate_left(17)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Some((lo, hi))
    }

    /// Served report for `key`, if memoized. Counts a hit.
    pub fn lookup(&mut self, key: Option<CostKey>) -> Option<JoinReport> {
        if !self.enabled {
            return None;
        }
        let rep = key.and_then(|k| self.entries.get(&k)).cloned();
        match rep {
            Some(r) => {
                self.hits += 1;
                Some(r)
            }
            None => None,
        }
    }

    /// Record a pricing run that had to execute. Counts a miss for
    /// cacheable keys; uncacheable pricings leave the counters alone.
    pub fn insert(&mut self, key: Option<CostKey>, report: &JoinReport) {
        if !self.enabled {
            return;
        }
        let Some(k) = key else { return };
        self.misses += 1;
        if self.entries.len() >= COST_CACHE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        if self.entries.insert(k, report.clone()).is_none() {
            self.order.push_back(k);
        }
    }

    /// Price `query` under `grant`: memo hit when possible, otherwise
    /// run the granted operator and (on success) memoize the report.
    /// Returns the report together with whether it was served from the
    /// cache — identical to calling [`Operator::run`] directly.
    pub fn price(
        &mut self,
        query: &JoinQuery,
        grant: &Reservation,
        hw: &triton_hw::HwConfig,
    ) -> (Result<JoinReport, triton_mem::OutOfMemory>, bool) {
        let op = operator_with_grant(query, grant);
        let key = if self.enabled {
            Self::key(query, &op)
        } else {
            None
        };
        if let Some(rep) = self.lookup(key) {
            return (Ok(rep), true);
        }
        let out = op.run(&query.workload, hw);
        if let Ok(rep) = &out {
            self.insert(key, rep);
        }
        (out, false)
    }

    /// Drop every memoized report (ECC-retirement invalidation hook).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Reports currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;
    use triton_hw::units::{Bytes, Ns};
    use triton_hw::HwConfig;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(2048)
    }

    fn grant(cache: u64) -> Reservation {
        Reservation {
            reserved: Bytes(1 << 26),
            cache_grant: Bytes(cache),
            floor: Bytes(1 << 20),
        }
    }

    fn query(seed: u64) -> JoinQuery {
        let mut spec = WorkloadSpec::paper_default(2, 2048);
        spec.seed = seed;
        JoinQuery::new("t", spec.generate(), Ns::ZERO)
    }

    #[test]
    fn hit_is_byte_identical_to_the_run_it_replays() {
        let mut c = CostCache::new(true);
        let q = query(1);
        let (first, cached1) = c.price(&q, &grant(0), &hw());
        let (second, cached2) = c.price(&q, &grant(0), &hw());
        assert!(!cached1 && cached2);
        let (a, b) = (first.unwrap(), second.unwrap());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn distinct_grants_and_data_never_collide() {
        let mut c = CostCache::new(true);
        let q = query(1);
        let _ = c.price(&q, &grant(0), &hw());
        // A different cache grant is a different placement: miss.
        let _ = c.price(&q, &grant(1 << 24), &hw());
        assert_eq!((c.hits, c.misses), (0, 2));
        // Same spec, different S data (a probe batch): miss.
        let mut probe = q.clone();
        probe.workload = JoinQuery::probe_batch(&q.workload, 99);
        let _ = c.price(&probe, &grant(0), &hw());
        assert_eq!((c.hits, c.misses), (0, 3));
        assert_eq!(c.len(), 3);
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = CostCache::new(false);
        let q = query(1);
        let (_, cached1) = c.price(&q, &grant(0), &hw());
        let (_, cached2) = c.price(&q, &grant(0), &hw());
        assert!(!cached1 && !cached2);
        assert_eq!((c.hits, c.misses), (0, 0));
        assert!(c.is_empty());
    }
}
