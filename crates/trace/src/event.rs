//! Trace events and their typed attributes.

/// A typed attribute value. Exporters format each variant exactly once,
/// so the encoding (and therefore the trace bytes) never depends on the
/// producer.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned counter (bytes, tuples, misses, ...).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A real-valued quantity (simulated nanoseconds, fractions, ...).
    F64(f64),
    /// A short label (operator names, fault kinds, reject reasons).
    Str(String),
    /// A flag.
    Bool(bool),
}

/// One `key: value` attribute. Keys are `snake_case` with the unit as a
/// suffix (`_ns`, `_bytes`); see the crate docs for the convention.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute name.
    pub key: String,
    /// Typed value.
    pub value: AttrValue,
}

impl Attr {
    /// An unsigned-counter attribute.
    pub fn u64(key: impl Into<String>, value: u64) -> Attr {
        Attr {
            key: key.into(),
            value: AttrValue::U64(value),
        }
    }

    /// A real-valued attribute.
    pub fn f64(key: impl Into<String>, value: f64) -> Attr {
        Attr {
            key: key.into(),
            value: AttrValue::F64(value),
        }
    }

    /// A string attribute.
    pub fn str(key: impl Into<String>, value: impl Into<String>) -> Attr {
        Attr {
            key: key.into(),
            value: AttrValue::Str(value.into()),
        }
    }

    /// A boolean attribute.
    pub fn bool(key: impl Into<String>, value: bool) -> Attr {
        Attr {
            key: key.into(),
            value: AttrValue::Bool(value),
        }
    }
}

/// What kind of event this is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// An interval with a duration (Chrome `ph: "X"`).
    Span {
        /// Duration in simulated nanoseconds.
        dur_ns: f64,
    },
    /// A point-in-time marker (Chrome `ph: "i"`).
    // triton-lint: allow(d2) -- names the Chrome instant event phase, not std::time::Instant
    Instant,
    /// A counter sample (Chrome `ph: "C"`): Perfetto renders the event's
    /// numeric attributes as stacked counter-track series. The sampled
    /// values live in [`TraceEvent::attrs`] so the variant stays `Copy`.
    Counter,
}

/// One recorded event. Tracks are addressed Chrome-style: a `pid` groups
/// related lanes (one per query, plus the scheduler), a `tid` is one
/// lane within the group (lifecycle, SM half A, SM half B, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Track group (Chrome "process").
    pub pid: u64,
    /// Lane within the group (Chrome "thread").
    pub tid: u64,
    /// Event name (span label / instant marker).
    pub name: String,
    /// Start time in simulated nanoseconds.
    pub ts_ns: f64,
    /// Span or instant.
    pub kind: EventKind,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<Attr>,
}

impl TraceEvent {
    /// Append an attribute (builder-style; call on the `&mut` returned
    /// by [`crate::Trace::span`] / [`crate::Trace::instant`]).
    pub fn attr(&mut self, attr: Attr) -> &mut TraceEvent {
        self.attrs.push(attr);
        self
    }

    /// Append several attributes at once.
    pub fn attrs(&mut self, attrs: impl IntoIterator<Item = Attr>) -> &mut TraceEvent {
        self.attrs.extend(attrs);
        self
    }

    /// End time of a span; the timestamp itself for an instant.
    pub fn end_ns(&self) -> f64 {
        match self.kind {
            EventKind::Span { dur_ns } => self.ts_ns + dur_ns,
            // triton-lint: allow(d2) -- matches the Chrome instant variant, not std::time::Instant
            EventKind::Instant => self.ts_ns,
            EventKind::Counter => self.ts_ns,
        }
    }
}
