//! Ablations of the Triton join's design choices (beyond the paper).
fn main() {
    triton_bench::figs::ablations::print(&triton_bench::hw());
}
