//! The CPU radix-partitioned hash join baseline (Section 6.1).
//!
//! A faithful model of the tuned multi-core baseline the paper measures:
//! SWWC radix partitioning of both relations (single pass on the POWER9,
//! two passes on the Xeon once the SWWC buffers outgrow its L3 slice),
//! followed by a cache-resident per-partition build/probe phase with
//! bucket chaining or perfect hashing (the array join of Schuh et al.,
//! 6-16% faster).
//!
//! The join executes functionally over the simulation-scale data; its
//! time comes from the calibrated CPU cost model, targeting the paper's
//! measurements: POWER9 at 1.1 declining to 0.9 G tuples/s (fanout 2^12
//! to 2^14), Xeon at 1.0 declining to 0.6 (two-pass switch).

use triton_datagen::{Workload, KEY_BYTES, TUPLE_BYTES};
use triton_hw::cpu::CpuPhaseCost;
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{CpuConfig, HwConfig};
use triton_part::cpu_swwc::{cpu_partition_time, cpu_swwc_partition, plan_passes};

use crate::hash_table::{BucketChainTable, HashScheme, BUCKET_CHAIN_ENTRIES};
use crate::report::{JoinReport, JoinResult, PhaseReport};

/// Configuration of the CPU radix join.
#[derive(Debug, Clone)]
pub struct CpuRadixJoin {
    /// CPU to model (POWER9 or Xeon).
    pub cpu: CpuConfig,
    /// Hashing scheme for the in-cache join phase.
    pub scheme: HashScheme,
}

impl CpuRadixJoin {
    /// The paper's primary CPU baseline.
    pub fn power9(scheme: HashScheme) -> Self {
        CpuRadixJoin {
            cpu: CpuConfig::power9(),
            scheme,
        }
    }

    /// The Xeon Gold 6126 comparison point.
    pub fn xeon(scheme: HashScheme) -> Self {
        CpuRadixJoin {
            cpu: CpuConfig::xeon_gold_6126(),
            scheme,
        }
    }

    /// Radix bits for the build side: sized so each partition's hash
    /// table is cache resident. The paper tunes 12-14 bits across the
    /// 128-2048 M tuple range; this derives the same choices from the
    /// *modeled* build size (scale-invariant).
    pub fn radix_bits(&self, r_bytes_modeled: u64) -> u32 {
        let target = 1u64 << 20; // ~1 MiB partitions
        let need = (r_bytes_modeled.max(1) as f64 / target as f64)
            .log2()
            .ceil() as i64;
        let bits = need.clamp(12, 14) as u32;
        // Prefer the largest fanout that still partitions in a single
        // pass, as long as partitions stay within ~4 MiB (the paper's
        // Xeon holds out at 2^12 until 1408 M tuples before paying for a
        // second pass).
        let mut b = bits;
        while b > 12 && plan_passes(b, &self.cpu) > 1 && r_bytes_modeled >> (b - 1) <= 4 << 20 {
            b -= 1;
        }
        b
    }

    /// Execute the join.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> JoinReport {
        let mut hw = hw.clone();
        hw.cpu = self.cpu.clone();

        let r_bytes_modeled = w.spec.r_tuples_modeled * TUPLE_BYTES;
        let bits = self.radix_bits(r_bytes_modeled);
        let passes = plan_passes(bits, &self.cpu);

        // Functional partition + cost, both relations.
        let pr = cpu_swwc_partition(&w.r.keys, &w.r.rids, bits, 0, w.r.len() as u64, &hw);
        let ps = cpu_swwc_partition(&w.s.keys, &w.s.rids, bits, 0, w.s.len() as u64, &hw);
        debug_assert_eq!(pr.passes, passes);
        let t_partition = pr.time + ps.time;

        // In-cache join phase, per partition.
        let mut result = JoinResult::empty();
        for p in 0..pr.parts.fanout() {
            let (rk, rr) = pr.parts.partition(p);
            let (sk, sr) = ps.parts.partition(p);
            if rk.is_empty() || sk.is_empty() {
                continue;
            }
            let table = BucketChainTable::build(rk, rr, BUCKET_CHAIN_ENTRIES, bits);
            for (&k, &srid) in sk.iter().zip(sr) {
                for rrid in table.probe_all(k) {
                    result.add(rrid, srid);
                }
            }
        }

        // Join-phase cost: streams both partitioned relations once and
        // does cache-resident per-tuple work. Perfect hashing (the array
        // join) saves the chain traversal: 6-16% faster end to end.
        let join_cpt = match self.scheme {
            HashScheme::Perfect => self.cpu.join_cycles_per_tuple * 0.72,
            _ => self.cpu.join_cycles_per_tuple,
        };
        let n = (w.r.len() + w.s.len()) as u64;
        let t_join =
            CpuPhaseCost::new(Bytes(n * TUPLE_BYTES), Bytes(0), n, join_cpt).time(&self.cpu);

        let phases = vec![
            PhaseReport::cpu(format!("Partition ({passes}-pass, 2^{bits})"), t_partition),
            PhaseReport::cpu("Join", t_join),
        ];
        let total = t_partition + t_join;
        JoinReport {
            name: format!("CPU Radix Join ({})", self.cpu.name),
            phases,
            total,
            tuples_actual: w.total_tuples(),
            tuples_modeled: w.total_tuples_modeled(),
            result,
            executor: Executor::Cpu,
            overlap: None,
            placement: None,
        }
    }

    /// Modeled time of partitioning one relation of `tuples` tuples (used
    /// by the CPU-partitioned GPU join, which shares this phase).
    pub fn partition_phase_time(&self, tuples: u64, bits: u32, hw: &HwConfig) -> Ns {
        let mut hw = hw.clone();
        hw.cpu = self.cpu.clone();
        cpu_partition_time(tuples, bits, plan_passes(bits, &self.cpu), &hw)
    }

    /// Prefix-sum throughput helper for Fig 20: bytes scanned per second.
    pub fn prefix_sum_bandwidth(&self, tuples: u64, hw: &HwConfig) -> f64 {
        let mut hw = hw.clone();
        hw.cpu = self.cpu.clone();
        let t = triton_part::cpu_prefix_sum_cost(tuples, &hw);
        (tuples * KEY_BYTES) as f64 / t.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn result_matches_reference() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        for scheme in [HashScheme::BucketChaining, HashScheme::Perfect] {
            let rep = CpuRadixJoin::power9(scheme).run(&w, &hw);
            assert_eq!(rep.result, reference_join(&w));
        }
    }

    #[test]
    fn radix_bits_follow_paper_tuning() {
        let j = CpuRadixJoin::power9(HashScheme::BucketChaining);
        // 128 M tuples -> 2 GiB -> 12 bits; 2048 M -> 32 GiB -> 14 bits+clamp.
        assert_eq!(j.radix_bits(128_000_000 * 16), 12);
        assert_eq!(j.radix_bits(512_000_000 * 16), 13);
        assert_eq!(j.radix_bits(2_048_000_000 * 16), 14);
    }

    #[test]
    fn power9_throughput_matches_paper() {
        let hw = HwConfig::ac922().scaled(256);
        // Use the paper workloads; expect ~1.1 G tuples/s at 128 M and a
        // decline toward ~0.9 at 2048 M.
        let small = CpuRadixJoin::power9(HashScheme::BucketChaining)
            .run(&WorkloadSpec::paper_default(128, 256).generate(), &hw);
        let large = CpuRadixJoin::power9(HashScheme::BucketChaining)
            .run(&WorkloadSpec::paper_default(2048, 256).generate(), &hw);
        let ts = small.throughput_gtps();
        let tl = large.throughput_gtps();
        assert!((0.85..=1.35).contains(&ts), "128M: {ts}");
        assert!((0.7..=1.1).contains(&tl), "2048M: {tl}");
        assert!(ts > tl, "throughput must decline with fanout");
    }

    #[test]
    fn xeon_slower_and_two_pass_at_large_sizes() {
        let hw = HwConfig::ac922().scaled(256);
        let w = WorkloadSpec::paper_default(2048, 256).generate();
        let p9 = CpuRadixJoin::power9(HashScheme::Perfect).run(&w, &hw);
        let xeon = CpuRadixJoin::xeon(HashScheme::Perfect).run(&w, &hw);
        assert!(xeon.throughput_gtps() < p9.throughput_gtps());
        // Paper: Xeon lands near 0.6 G tuples/s at 2048 M.
        let t = xeon.throughput_gtps();
        assert!((0.4..=0.85).contains(&t), "xeon 2048M: {t}");
        assert!(xeon.phases[0].name.contains("2-pass"));
    }

    #[test]
    fn perfect_hashing_modestly_faster() {
        let hw = HwConfig::ac922().scaled(256);
        let w = WorkloadSpec::paper_default(512, 256).generate();
        let bc = CpuRadixJoin::power9(HashScheme::BucketChaining).run(&w, &hw);
        let pf = CpuRadixJoin::power9(HashScheme::Perfect).run(&w, &hw);
        let speedup = pf.throughput_gtps() / bc.throughput_gtps();
        // Paper: 6-16% faster.
        assert!((1.03..=1.25).contains(&speedup), "speedup {speedup}");
    }
}
