//! Cache tuning: sweep the GPU-memory cache budget of the Triton join's
//! hybrid working set (the Section 5.3 interleaved array) and observe the
//! robustness the paper designs for — including the counterintuitive dip
//! at 100% caching, where an idle interconnect wastes bandwidth.
//!
//! ```text
//! cargo run --release --example cache_tuning -p triton-core
//! ```

use triton_core::TritonJoin;
use triton_datagen::WorkloadSpec;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;

fn main() {
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);
    let gib = 1u64 << 30;

    for m in [512u64, 2048] {
        let w = WorkloadSpec::paper_default(m, k).generate();
        println!(
            "\nworkload: {m} M tuples/relation ({} GiB modeled data)",
            m * 32 / 1024
        );
        println!(
            "{:>12} {:>12} {:>10}",
            "cache (GiB)", "G tuples/s", "vs 0-cache"
        );
        let mut base = None;
        for cache_gib in [0.0f64, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 14.9] {
            let join = TritonJoin {
                cache_bytes: Some(Bytes(((cache_gib * gib as f64) as u64) / k)),
                ..TritonJoin::default()
            };
            let tput = join.run(&w, &hw).throughput_gtps();
            let b = *base.get_or_insert(tput);
            println!("{:>12.1} {:>12.3} {:>9.2}x", cache_gib, tput, tput / b);
        }
    }

    println!(
        "\nNo cliffs in either direction: the interleaved GPU/CPU page\n\
         mapping spreads the cached share evenly through the working set,\n\
         so every extra GiB of cache helps a little and a mis-sized cache\n\
         never falls off a cliff (Section 6.2.7)."
    );
}
