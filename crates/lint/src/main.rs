//! `triton-lint` — scan the workspace for determinism, unit-safety,
//! cost-fidelity, lifecycle, and exhaustiveness violations.
//!
//! ```text
//! triton-lint [--json <path>] [--update-ratchet] [--no-ratchet] [<workspace-root>]
//! ```
//!
//! Exits 0 when every finding is waived (with a written reason), every
//! waiver matches a finding, and the per-rule counts are within the
//! committed ratchet baseline (`lint-ratchet.json` at the workspace
//! root). Exits 1 on any unwaived violation, reasonless or stale
//! waiver, or ratchet regression; 2 on usage/IO errors.
//!
//! `--json <path>` additionally writes a JSON Lines report
//! (bench-harness conventions) to `<path>`. `--update-ratchet` rewrites
//! the baseline to the current counts (use after *reducing* findings);
//! `--no-ratchet` skips the baseline comparison entirely.

use std::path::PathBuf;
use std::process::ExitCode;

use triton_lint::analyze_workspace;
use triton_lint::report::Ratchet;

/// Default workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run() -> Result<bool, String> {
    let mut json_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut update_ratchet = false;
    let mut no_ratchet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--json requires a path argument".to_string())?;
                json_out = Some(PathBuf::from(path));
            }
            "--update-ratchet" => update_ratchet = true,
            "--no-ratchet" => no_ratchet = true,
            "--help" | "-h" => {
                println!(
                    "usage: triton-lint [--json <path>] [--update-ratchet] \
                     [--no-ratchet] [<workspace-root>]"
                );
                return Ok(true);
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let report = analyze_workspace(&root)?;
    print!("{}", report.render_text());
    if let Some(path) = json_out {
        std::fs::write(&path, report.render_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("json report written to {}", path.display());
    }

    let ratchet_path = root.join("lint-ratchet.json");
    let mut ratchet_ok = true;
    if update_ratchet {
        std::fs::write(&ratchet_path, report.render_ratchet())
            .map_err(|e| format!("{}: {e}", ratchet_path.display()))?;
        println!("ratchet baseline written to {}", ratchet_path.display());
    } else if !no_ratchet && ratchet_path.is_file() {
        let src = std::fs::read_to_string(&ratchet_path)
            .map_err(|e| format!("{}: {e}", ratchet_path.display()))?;
        let baseline = Ratchet::parse(&src).map_err(|e| format!("lint-ratchet.json: {e}"))?;
        let regressions = report.ratchet_regressions(&baseline);
        for (code, base, now) in &regressions {
            println!(
                "ratchet: {} findings grew {base} -> {now}; fix the new sites or, \
                 if each is waived with a reason, run --update-ratchet deliberately",
                code.to_ascii_uppercase()
            );
            ratchet_ok = false;
        }
        let slack: Vec<String> = report
            .rule_totals()
            .into_iter()
            .filter(|(code, n)| (*n as u64) < baseline.count(code))
            .map(|(code, _)| code.to_ascii_uppercase())
            .collect();
        if !slack.is_empty() {
            println!(
                "ratchet: counts below baseline for {} — run --update-ratchet to lock in",
                slack.join(", ")
            );
        }
    }
    Ok(!report.failed() && ratchet_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("triton-lint: {e}");
            ExitCode::from(2)
        }
    }
}
