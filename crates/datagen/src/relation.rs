//! Columnar relations of 16-byte `<key, record-id>` tuples.
//!
//! Section 6.1 of the paper: two base relations R and S of 16-byte tuples
//! stored column-oriented; R holds randomly shuffled unique primary keys,
//! S references them with uniformly distributed foreign keys; record-ids
//! are random values. Fig 22 additionally attaches up to 16 extra 8-byte
//! payload attributes for the tuple-width experiment.

/// Bytes per base tuple (8-byte key + 8-byte record id).
pub const TUPLE_BYTES: u64 = 16;

/// Bytes per key (one column entry).
pub const KEY_BYTES: u64 = 8;

/// Bytes per extra payload attribute.
pub const PAYLOAD_BYTES: u64 = 8;

/// A column-oriented relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Join-key column.
    pub keys: Vec<u64>,
    /// Record-id column (the paper's second 8-byte attribute).
    pub rids: Vec<u64>,
    /// Optional wide-tuple payload columns (Fig 22).
    pub payload_cols: Vec<Vec<u64>>,
}

impl Relation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Base bytes (key + rid columns).
    pub fn base_bytes(&self) -> u64 {
        self.len() as u64 * TUPLE_BYTES
    }

    /// Bytes including extra payload columns.
    pub fn total_bytes(&self) -> u64 {
        self.base_bytes() + self.payload_cols.len() as u64 * self.len() as u64 * PAYLOAD_BYTES
    }

    /// Build a relation from parallel key/rid vectors.
    pub fn from_columns(keys: Vec<u64>, rids: Vec<u64>) -> Self {
        assert_eq!(keys.len(), rids.len());
        Relation {
            keys,
            rids,
            payload_cols: Vec::new(),
        }
    }

    /// Iterate `(key, rid)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys.iter().copied().zip(self.rids.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut r = Relation::from_columns(vec![1, 2, 3], vec![10, 20, 30]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.base_bytes(), 48);
        assert_eq!(r.total_bytes(), 48);
        r.payload_cols.push(vec![0; 3]);
        r.payload_cols.push(vec![0; 3]);
        assert_eq!(r.total_bytes(), 48 + 2 * 24);
    }

    #[test]
    fn iter_pairs() {
        let r = Relation::from_columns(vec![5, 6], vec![50, 60]);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v, vec![(5, 50), (6, 60)]);
    }

    #[test]
    #[should_panic]
    fn mismatched_columns_panic() {
        let _ = Relation::from_columns(vec![1], vec![]);
    }
}
