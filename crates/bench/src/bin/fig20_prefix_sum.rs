//! Fig 20: prefix sum on the CPU vs on the GPU.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig20::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
