//! Cross-crate integration tests: every join operator must produce the
//! exact reference result on every workload shape, across hardware
//! scales, cache budgets, and algorithm combinations.

use triton_core::{
    reference_join, CpuPartitionedJoin, CpuRadixJoin, HashScheme, JoinReport, NoPartitioningJoin,
    TritonJoin,
};
use triton_datagen::{Workload, WorkloadSpec};
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_part::Algorithm;

type Operator = Box<dyn Fn(&Workload, &HwConfig) -> JoinReport>;

fn operators() -> Vec<(&'static str, Operator)> {
    vec![
        (
            "triton-default",
            Box::new(|w: &Workload, hw: &HwConfig| TritonJoin::default().run(w, hw)),
        ),
        (
            "triton-no-cache-gpu-ps",
            Box::new(|w, hw| {
                TritonJoin {
                    caching_enabled: false,
                    gpu_prefix_sum: true,
                    ..TritonJoin::default()
                }
                .run(w, hw)
            }),
        ),
        (
            "triton-materializing",
            Box::new(|w, hw| {
                TritonJoin {
                    materialize: true,
                    scheme: HashScheme::Perfect,
                    ..TritonJoin::default()
                }
                .run(w, hw)
            }),
        ),
        (
            "npj-linear-probing",
            Box::new(|w, hw| NoPartitioningJoin::linear_probing().run(w, hw)),
        ),
        (
            "npj-perfect",
            Box::new(|w, hw| NoPartitioningJoin::perfect().run(w, hw)),
        ),
        (
            "cpu-radix-p9",
            Box::new(|w, hw| CpuRadixJoin::power9(HashScheme::BucketChaining).run(w, hw)),
        ),
        (
            "cpu-radix-xeon",
            Box::new(|w, hw| CpuRadixJoin::xeon(HashScheme::Perfect).run(w, hw)),
        ),
        (
            "cpu-partitioned",
            Box::new(|w, hw| CpuPartitionedJoin::default().run(w, hw)),
        ),
    ]
}

fn check_all(w: &Workload, hw: &HwConfig) {
    let expect = reference_join(w);
    for (name, run) in operators() {
        let rep = run(w, hw);
        assert_eq!(rep.result, expect, "{name} diverged from the reference");
        assert!(rep.total.0 > 0.0, "{name}: zero modeled time");
        assert_eq!(rep.tuples_actual, w.total_tuples());
    }
}

#[test]
fn default_workload_all_operators() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(16, 512).generate();
    check_all(&w, &hw);
}

#[test]
fn skewed_ratio_workloads() {
    let hw = HwConfig::ac922().scaled(2048);
    for ratio in [2u64, 8, 32] {
        let w = WorkloadSpec::with_ratio(16, ratio, 512).generate();
        check_all(&w, &hw);
    }
}

#[test]
fn zipf_exactness_per_skew_mechanism() {
    use triton_core::{SkewMechanisms, SkewPolicy};
    let hw = HwConfig::ac922().scaled(2048);
    // Every skew mechanism — alone and combined — must leave results
    // byte-identical to the reference at every skew level.
    let mech = |hot_cache, lpt, split_heavy| SkewMechanisms {
        hot_cache,
        lpt,
        split_heavy,
        ..SkewMechanisms::default()
    };
    let policies = [
        ("off", SkewPolicy::Off),
        ("hot_cache", SkewPolicy::Aware(mech(true, false, false))),
        ("lpt", SkewPolicy::Aware(mech(false, true, false))),
        ("split_heavy", SkewPolicy::Aware(mech(false, false, true))),
        ("combined", SkewPolicy::aware()),
    ];
    for theta in [0.5, 1.0, 1.75] {
        let w = WorkloadSpec::skewed(256, theta, 512).generate();
        let expect = reference_join(&w);
        for (name, policy) in &policies {
            let rep = TritonJoin {
                skew: *policy,
                ..TritonJoin::default()
            }
            .run(&w, &hw);
            assert_eq!(
                rep.result, expect,
                "theta {theta}, mechanism `{name}` diverged from the reference"
            );
        }
    }
}

#[test]
fn tiny_workload() {
    let hw = HwConfig::ac922().scaled(4096);
    let mut spec = WorkloadSpec::paper_default(1, 1_000_000);
    spec.r_tuples_modeled = 3_000_000; // 3 actual tuples
    spec.s_tuples_modeled = 7_000_000; // 7 actual tuples
    let w = spec.generate();
    check_all(&w, &hw);
}

#[test]
fn all_pass1_algorithms_produce_identical_results() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(16, 512).generate();
    let expect = reference_join(&w);
    for alg in Algorithm::all() {
        let rep = TritonJoin {
            pass1: alg,
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(rep.result, expect, "{alg:?}");
    }
}

#[test]
fn results_invariant_across_hardware_scales() {
    // The functional result must not depend on the simulated capacities.
    let w = WorkloadSpec::paper_default(16, 512).generate();
    let expect = reference_join(&w);
    for k in [512u64, 2048, 8192] {
        let hw = HwConfig::ac922().scaled(k);
        assert_eq!(TritonJoin::default().run(&w, &hw).result, expect, "K={k}");
    }
}

#[test]
fn results_invariant_across_cache_budgets() {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(16, 512).generate();
    let expect = reference_join(&w);
    for cache in [0u64, 1 << 18, 1 << 21, u64::MAX >> 20] {
        let rep = TritonJoin {
            cache_bytes: Some(Bytes(cache)),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(rep.result, expect, "cache={cache}");
    }
}

#[test]
fn wide_tuple_workloads_join_correctly() {
    let hw = HwConfig::ac922().scaled(2048);
    let mut spec = WorkloadSpec::paper_default(8, 512);
    spec.payload_cols = 16;
    let w = spec.generate();
    check_all(&w, &hw);
    for payloads in [1usize, 16] {
        for strategy in [
            triton_core::Materialization::JoinIndex,
            triton_core::Materialization::Early { payloads },
            triton_core::Materialization::Late { payloads },
        ] {
            let rep = triton_core::run_with_materialization(&w, strategy, &hw);
            assert_eq!(rep.result, reference_join(&w), "{strategy:?}");
        }
    }
}
