//! Bridges join reports into `triton-trace` spans.
//!
//! The serving runtime (`triton-exec`) records one trace track group per
//! query; this module knows how to unfold a [`JoinReport`] onto those
//! tracks: the merged per-kernel phases as a sequential span chain, and —
//! when the operator ran with concurrent kernels — the Section 5.2
//! SM-half overlap as two parallel lanes.
//!
//! Attribute keys follow the workspace convention: `snake_case`, with the
//! unit as a suffix (`_ns`, `_bytes`); dimensionless counts carry no
//! suffix. Phase names are normalised with [`phase_key`] wherever they
//! become keys (rollups), and kept verbatim where they become span names
//! (so Perfetto shows the paper's kernel labels).

use crate::report::{JoinReport, OverlapLanes, PhaseReport, PlacementReport};
use triton_hw::HwConfig;
use triton_trace::{Attr, Trace};

/// Normalise a phase name into a rollup key: lowercase, with every run of
/// non-alphanumeric characters collapsed to a single `_` ("PS 1" →
/// `ps_1`, "Part 2" → `part_2`).
pub fn phase_key(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Bytes a phase moved, for rollups: interconnect payload plus GPU memory
/// traffic. CPU phases carry no cost model and report zero.
pub fn phase_bytes(p: &PhaseReport) -> u64 {
    match &p.cost {
        Some(c) => {
            let link = c.link.payload();
            let mem = c.gpu_mem.total();
            (link + mem).0
        }
        None => 0,
    }
}

/// Join phase-progress counter increments for a finished report: one
/// `(phase_key, time_ns, bytes)` triple per phase, in report order.
///
/// This is the bridge from a [`JoinReport`] to time-series telemetry
/// counters (`phase.<op>.<key>.count/.time_ns/.bytes`): times are
/// truncated to integer nanoseconds at this boundary so everything
/// downstream stays in integer arithmetic, and bytes reuse the rollup
/// convention of [`phase_bytes`].
pub fn phase_progress(report: &JoinReport) -> Vec<(String, u64, u64)> {
    report
        .phases
        .iter()
        .map(|p| {
            let time_ns = p.time.0;
            let t = if time_ns.is_finite() && time_ns > 0.0 {
                time_ns as u64
            } else {
                0
            };
            (phase_key(&p.name), t, phase_bytes(p))
        })
        .collect()
}

/// Record a report's phases as a sequential span chain on `(pid, tid)`
/// starting at `t0_ns`, with every duration scaled by `stretch` (so the
/// chain can be stretched to cover exactly the query's scheduled
/// `[start, finish]` window even though isolated phase times ignore
/// pipeline overlap). Each span carries `isolated_time_ns` plus the full
/// kernel cost attributes for GPU phases. Returns the timestamp where the
/// chain ended.
pub fn record_report(
    trace: &mut Trace,
    pid: u64,
    tid: u64,
    t0_ns: f64,
    stretch: f64,
    report: &JoinReport,
    hw: &HwConfig,
) -> f64 {
    let mut ts = t0_ns;
    for p in &report.phases {
        let dur = (p.time.0 * stretch).max(0.0);
        let ev = trace.span(pid, tid, p.name.clone(), ts, dur);
        ev.attr(Attr::f64("isolated_time_ns", p.time.0));
        if let Some(cost) = &p.cost {
            ev.attrs(cost.trace_attrs(hw));
        }
        ts += dur;
    }
    ts
}

/// Record the Section 5.2 concurrent-kernel schedule as two lanes:
/// per-pair second-pass spans on `tid_a` and join spans on `tid_b`, at
/// the barrier offsets of [`OverlapLanes::schedule`], all relative to
/// `t0_ns` with times scaled by `scale`. This is what makes the SM-half
/// overlap *visible* in a Chrome trace: the partitioning pass of the next
/// scheduled pair runs on top of the current pair's join. When the
/// scheduler reordered pairs (skew-aware LPT), each span carries its
/// schedule position so traces stay reconcilable with submission order;
/// `placement` adds the cache decision of each pair.
#[allow(clippy::too_many_arguments)]
pub fn record_overlap(
    trace: &mut Trace,
    pid: u64,
    tid_a: u64,
    tid_b: u64,
    t0_ns: f64,
    scale: f64,
    lanes: &OverlapLanes,
    placement: Option<&PlacementReport>,
) {
    let order = lanes.execution_order();
    let mut sched_pos = vec![0u64; order.len()];
    for (k, &lane) in order.iter().enumerate() {
        sched_pos[lane] = k as u64;
    }
    for (i, (a_start, b_start)) in lanes.schedule().into_iter().enumerate() {
        let a_dur = (lanes.stage_a[i].0 * scale).max(0.0);
        let b_dur = (lanes.stage_b[i].0 * scale).max(0.0);
        let pair_attrs = |ev: &mut triton_trace::TraceEvent| {
            ev.attr(Attr::u64("pair", i as u64));
            ev.attr(Attr::u64("sched_pos", sched_pos[i]));
            if let Some(p) = placement.and_then(|p| p.pairs.get(i)) {
                ev.attr(Attr::u64("part", p.part));
                ev.attr(Attr::u64("cached", u64::from(p.cached)));
                ev.attr(Attr::u64("pair_gpu_bytes", p.gpu_bytes));
            }
        };
        let ev = trace.span(
            pid,
            tid_a,
            format!("pass2 p{i}"),
            t0_ns + a_start.0 * scale,
            a_dur,
        );
        pair_attrs(ev);
        let ev = trace.span(
            pid,
            tid_b,
            format!("join p{i}"),
            t0_ns + b_start.0 * scale,
            b_dur,
        );
        pair_attrs(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{JoinResult, PhaseReport};
    use triton_hw::power::Executor;
    use triton_hw::units::Ns;

    #[test]
    fn phase_key_normalises() {
        assert_eq!(phase_key("PS 1"), "ps_1");
        assert_eq!(phase_key("Part 2"), "part_2");
        assert_eq!(phase_key("Join"), "join");
        assert_eq!(phase_key("  CPU -- merge  "), "cpu_merge");
        assert_eq!(phase_key(""), "");
    }

    #[test]
    fn phase_progress_truncates_to_integer_ns() {
        let report = JoinReport {
            name: "x".into(),
            phases: vec![
                PhaseReport::cpu("PS 1", Ns(30.7)),
                PhaseReport::cpu("Join", Ns(-1.0)),
            ],
            total: Ns(29.7),
            tuples_actual: 1,
            tuples_modeled: 1,
            result: JoinResult::empty(),
            executor: Executor::Cpu,
            overlap: None,
            placement: None,
        };
        let prog = phase_progress(&report);
        assert_eq!(
            prog,
            vec![("ps_1".to_string(), 30, 0), ("join".to_string(), 0, 0)]
        );
    }

    #[test]
    fn record_report_stretches_to_window() {
        let report = JoinReport {
            name: "x".into(),
            phases: vec![
                PhaseReport::cpu("a", Ns(30.0)),
                PhaseReport::cpu("b", Ns(70.0)),
            ],
            total: Ns(100.0),
            tuples_actual: 1,
            tuples_modeled: 1,
            result: JoinResult::empty(),
            executor: Executor::Cpu,
            overlap: None,
            placement: None,
        };
        let hw = HwConfig::ac922().scaled(65536);
        let mut trace = Trace::new();
        // Stretch the 100 ns of isolated time over a 200 ns window.
        let end = record_report(&mut trace, 3, 1, 1000.0, 2.0, &report, &hw);
        assert!((end - 1200.0).abs() < 1e-9);
        assert_eq!(trace.len(), 2);
        let first = &trace.events()[0];
        assert_eq!(first.name, "a");
        assert!((first.ts_ns - 1000.0).abs() < 1e-9);
        assert!((trace.span_ns() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn record_overlap_draws_two_lanes() {
        let lanes = OverlapLanes {
            stage_a: vec![Ns(10.0), Ns(20.0)],
            stage_b: vec![Ns(15.0), Ns(5.0)],
            order: vec![],
        };
        let mut trace = Trace::new();
        record_overlap(&mut trace, 2, 1, 2, 100.0, 1.0, &lanes, None);
        assert_eq!(trace.len(), 4);
        // Pair 1's pass2 and pair 0's join launch together at the barrier.
        let a1 = &trace.events()[2];
        let b0 = &trace.events()[1];
        assert_eq!(a1.name, "pass2 p1");
        assert_eq!(b0.name, "join p0");
        assert!((a1.ts_ns - b0.ts_ns).abs() < 1e-9);
        assert!((a1.ts_ns - 110.0).abs() < 1e-9);
    }

    #[test]
    fn record_overlap_carries_schedule_and_placement() {
        use crate::report::{PairPlacement, PlacementReport};
        let lanes = OverlapLanes {
            stage_a: vec![Ns(10.0), Ns(1.0)],
            stage_b: vec![Ns(1.0), Ns(10.0)],
            order: vec![1, 0],
        };
        let placement = PlacementReport {
            policy: "planned".into(),
            cache_budget_bytes: 100,
            cache_hit_bytes: 60,
            spilled_bytes: 40,
            pairs: vec![
                PairPlacement {
                    part: 2,
                    bytes: 60,
                    gpu_bytes: 60,
                    cached: true,
                },
                PairPlacement {
                    part: 5,
                    bytes: 40,
                    gpu_bytes: 0,
                    cached: false,
                },
            ],
        };
        let mut trace = Trace::new();
        record_overlap(&mut trace, 1, 1, 2, 0.0, 1.0, &lanes, Some(&placement));
        assert_eq!(trace.len(), 4);
        // Pair 1 is scheduled first: its pass2 span starts at 0.
        let a1 = trace
            .events()
            .iter()
            .find(|e| e.name == "pass2 p1")
            .unwrap();
        assert!((a1.ts_ns - 0.0).abs() < 1e-9);
        let get = |e: &triton_trace::TraceEvent, k: &str| {
            e.attrs
                .iter()
                .find_map(|a| (a.key == k).then(|| a.value.clone()))
        };
        assert_eq!(format!("{:?}", get(a1, "sched_pos").unwrap()), "U64(0)");
        let a0 = trace
            .events()
            .iter()
            .find(|e| e.name == "pass2 p0")
            .unwrap();
        assert_eq!(format!("{:?}", get(a0, "sched_pos").unwrap()), "U64(1)");
        assert_eq!(format!("{:?}", get(a0, "cached").unwrap()), "U64(1)");
        assert_eq!(format!("{:?}", get(a0, "part").unwrap()), "U64(2)");
    }
}
