//! Out-of-core scaling: watch the no-partitioning join fall off the GPU
//! memory and TLB cliffs while the Triton join degrades gracefully — the
//! motivating scenario of the paper's Fig 1.
//!
//! ```text
//! cargo run --release --example out_of_core -p triton-core
//! ```

use triton_core::{NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

fn main() {
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);

    println!("GPU memory (modeled): 16 GiB; translation coverage: 32 GiB\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "M tuples", "NPJ-LP (G/s)", "NPJ-PF (G/s)", "Triton (G/s)"
    );

    for m in [128u64, 256, 512, 640, 896, 1024, 1280, 1536, 2048] {
        let w = WorkloadSpec::paper_default(m, k).generate();
        let lp = NoPartitioningJoin::linear_probing().run(&w, &hw);
        let pf = NoPartitioningJoin::perfect().run(&w, &hw);
        let tr = TritonJoin::default().run(&w, &hw);
        // All three compute the same join.
        assert_eq!(lp.result, tr.result);
        assert_eq!(pf.result, tr.result);
        let marker = |g: f64, others: [f64; 2]| {
            if g >= others[0] && g >= others[1] {
                " <-- fastest"
            } else {
                ""
            }
        };
        println!(
            "{:>10} {:>14.4} {:>14.3} {:>14.3}{}",
            m,
            lp.throughput_gtps(),
            pf.throughput_gtps(),
            tr.throughput_gtps(),
            marker(
                tr.throughput_gtps(),
                [lp.throughput_gtps(), pf.throughput_gtps()]
            ),
        );
    }

    println!(
        "\nThe hash-table cliffs: linear probing doubles its table (50% load\n\
         factor), so it exceeds the 32 GiB translation coverage first and\n\
         collapses >100x; perfect hashing survives until the table outgrows\n\
         GPU memory. The Triton join spills partitions over the interconnect\n\
         and keeps ~70% of its peak at 2048 M tuples."
    );
}
