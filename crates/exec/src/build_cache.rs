//! Build-side sharing: probe batches against the same build relation
//! reuse its partitioned state instead of re-partitioning R per query.
//!
//! The partitioned build relation (the output of PS 1 + Part 1 restricted
//! to R) lives in the hybrid array whose spill side is CPU memory — which
//! is plentiful — so the cache tracks *which* build relations are
//! resident and reference counts, not GPU bytes; GPU cache pages are
//! re-granted per query by admission control. A hit lets the scheduler
//! discount the build side's share of the first partitioning pass (see
//! [`crate::demand::ResourceDemand::from_report`]).
//!
//! # Prefix / subsume matching
//!
//! Partitioned build state is range-addressable: the first pass scatters
//! R by the low [`BUILD_RADIX_BITS`] radix bits of the hashed key, so a
//! resident build over partition range `[lo, hi)` physically *contains*
//! the partitioned state of any sub-range. Entries therefore key on
//! `(family, lo, hi)`, and a query whose build side is a sub-range of a
//! resident build reuses the covering state ([`BuildHit::Prefix`])
//! instead of rebuilding — the follower skips exactly its own build
//! side's share of the partitioning pass, which is what
//! [`crate::demand::ResourceDemand::from_report`] discounts, so prefix
//! reuse is priced identically honestly to exact reuse. Full-relation
//! builds use [`FULL_RANGE`] and behave exactly as before.
//!
//! # Circuit breaker
//!
//! A hardware fault can invalidate resident partitioned state (ECC page
//! retirement tears the GPU-cached pages of the hybrid array). The cache
//! then acts as a circuit breaker: [`BuildCache::quarantine_all`] evicts
//! every entry and *quarantines* its family. The next query naming a
//! quarantined family is forced to rebuild (a deliberate miss that
//! closes the breaker for that family) instead of trusting stale shared
//! state — sub-range reuse included, since the whole family's resident
//! state is suspect.

use std::collections::{BTreeMap, BTreeSet};

/// Radix bits addressing shared build state: partition = hash & 0xFF.
pub const BUILD_RADIX_BITS: u32 = 8;

/// The partition range of a whole-relation build.
pub const FULL_RANGE: (u32, u32) = (0, 1 << BUILD_RADIX_BITS);

/// How an acquire was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildHit {
    /// The exact `(family, range)` build was resident.
    Exact,
    /// A resident build of the same family covers this query's range;
    /// the sub-range state is reused without rebuilding.
    Prefix,
    /// Nothing reusable: this query builds (and leaves its state behind).
    Miss,
}

impl BuildHit {
    /// Whether the query skips re-partitioning its build side.
    pub fn is_hit(self) -> bool {
        !matches!(self, BuildHit::Miss)
    }
}

/// Refcounted registry of resident partitioned build relations.
#[derive(Debug, Default)]
pub struct BuildCache {
    /// Resident builds keyed by `(family, lo, hi)` partition range.
    entries: BTreeMap<(u64, u32, u32), Entry>,
    /// Families whose partitioned state a fault invalidated; the next
    /// acquire rebuilds and clears the quarantine.
    quarantined: BTreeSet<u64>,
    /// Queries that found their build side already partitioned
    /// (exact + prefix).
    pub hits: u64,
    /// Hits on the exact `(family, range)` entry.
    pub exact_hits: u64,
    /// Hits served from a covering (superset) entry of the family.
    pub prefix_hits: u64,
    /// Queries that had to partition their build side themselves.
    pub misses: u64,
    /// Forced misses served while a family was quarantined.
    pub quarantine_rebuilds: u64,
}

#[derive(Debug)]
struct Entry {
    refs: usize,
    /// Build-side bytes (reporting only; the state lives in CPU memory).
    r_bytes: u64,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// First resident entry of `family` covering `range`, if any.
    fn covering(&self, family: u64, range: (u32, u32)) -> Option<(u64, u32, u32)> {
        self.entries
            .range((family, 0, 0)..=(family, u32::MAX, u32::MAX))
            .map(|(k, _)| *k)
            .find(|&(_, lo, hi)| lo <= range.0 && range.1 <= hi)
    }

    /// Acquire the build state for `key` over the full partition range,
    /// pinning it while the query runs. Returns `true` on a hit.
    pub fn acquire(&mut self, key: u64, r_bytes: u64) -> bool {
        self.acquire_range(key, r_bytes, FULL_RANGE).is_hit()
    }

    /// Acquire the build state for family `key` over the partition
    /// `range` (half-open, within `0..1 << BUILD_RADIX_BITS`), pinning
    /// the serving entry while the query runs. Exact entries are
    /// preferred; otherwise any resident build of the family whose range
    /// covers this one serves the acquire as a [`BuildHit::Prefix`]. On
    /// a miss this query partitions its own range and leaves the state
    /// behind for followers.
    pub fn acquire_range(&mut self, key: u64, r_bytes: u64, range: (u32, u32)) -> BuildHit {
        if self.quarantined.remove(&key) {
            // Breaker half-open: this query rebuilds the partitioned
            // state from scratch; followers may share the fresh copy.
            self.quarantine_rebuilds += 1;
            self.misses += 1;
            self.entries
                .insert((key, range.0, range.1), Entry { refs: 1, r_bytes });
            return BuildHit::Miss;
        }
        if let Some(e) = self.entries.get_mut(&(key, range.0, range.1)) {
            e.refs += 1;
            self.hits += 1;
            self.exact_hits += 1;
            return BuildHit::Exact;
        }
        if let Some(cover) = self.covering(key, range) {
            if let Some(e) = self.entries.get_mut(&cover) {
                e.refs += 1;
            }
            self.hits += 1;
            self.prefix_hits += 1;
            return BuildHit::Prefix;
        }
        self.entries
            .insert((key, range.0, range.1), Entry { refs: 1, r_bytes });
        self.misses += 1;
        BuildHit::Miss
    }

    /// Unpin the full-range build state after the query finishes.
    pub fn release(&mut self, key: u64) {
        self.release_range(key, FULL_RANGE);
    }

    /// Unpin after the query finishes: the exact entry if resident, else
    /// the covering entry that served the acquire. Entries only vanish
    /// wholesale (quarantine), so the lookup resolves to the same entry
    /// the acquire pinned — or to nothing, in which case the pin died
    /// with the quarantined state and there is nothing to unpin. Idle
    /// entries stay resident for later probe batches until
    /// [`Self::evict_idle`].
    pub fn release_range(&mut self, key: u64, range: (u32, u32)) {
        let target = if self.entries.contains_key(&(key, range.0, range.1)) {
            Some((key, range.0, range.1))
        } else {
            self.covering(key, range)
        };
        if let Some(k) = target {
            if let Some(e) = self.entries.get_mut(&k) {
                e.refs = e.refs.saturating_sub(1);
            }
        }
    }

    /// Trip the circuit breaker: evict *every* resident build (pinned
    /// or not — the backing pages are gone) and quarantine the families
    /// so the next acquire rebuilds instead of sharing stale state.
    /// Returns the number of builds invalidated. In-flight queries that
    /// already consumed their shared state keep exact results; only the
    /// reusable partitioned copy is lost.
    pub fn quarantine_all(&mut self) -> usize {
        let n = self.entries.len();
        for (family, _, _) in self.entries.keys() {
            self.quarantined.insert(*family);
        }
        self.entries.clear();
        n
    }

    /// Whether `key`'s family is currently quarantined (breaker open).
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantined.contains(&key)
    }

    /// Drop all unpinned entries, returning the bytes retired.
    pub fn evict_idle(&mut self) -> u64 {
        let mut freed = 0;
        self.entries.retain(|_, e| {
            if e.refs == 0 {
                freed += e.r_bytes;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Number of resident build relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_miss_then_hits() {
        let mut c = BuildCache::new();
        assert!(!c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(!c.acquire(8, 500));
        assert_eq!((c.hits, c.misses), (2, 2));
        assert_eq!((c.exact_hits, c.prefix_hits), (2, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sub_range_reuses_the_covering_build() {
        let mut c = BuildCache::new();
        assert_eq!(c.acquire_range(7, 1000, FULL_RANGE), BuildHit::Miss);
        // A slice of the same family rides the resident full build.
        assert_eq!(c.acquire_range(7, 250, (0, 64)), BuildHit::Prefix);
        assert_eq!(c.acquire_range(7, 500, (64, 192)), BuildHit::Prefix);
        // Repeating the full range is an exact hit, not a prefix.
        assert_eq!(c.acquire_range(7, 1000, FULL_RANGE), BuildHit::Exact);
        // A different family never matches.
        assert_eq!(c.acquire_range(8, 250, (0, 64)), BuildHit::Miss);
        // A *superset* of a resident slice is not covered: it rebuilds.
        assert_eq!(c.acquire_range(8, 500, (0, 128)), BuildHit::Miss);
        assert_eq!((c.hits, c.misses), (3, 3));
        assert_eq!((c.exact_hits, c.prefix_hits), (1, 2));
        // Only builds that actually ran left entries behind.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn prefix_pins_the_covering_entry() {
        let mut c = BuildCache::new();
        c.acquire_range(7, 1000, FULL_RANGE);
        c.release_range(7, FULL_RANGE);
        assert_eq!(c.acquire_range(7, 250, (0, 64)), BuildHit::Prefix);
        // The covering full-range entry is pinned by the slice reader.
        assert_eq!(c.evict_idle(), 0);
        c.release_range(7, (0, 64));
        assert_eq!(c.evict_idle(), 1000);
        assert!(c.is_empty());
    }

    #[test]
    fn quarantine_trips_and_closes_the_breaker() {
        let mut c = BuildCache::new();
        c.acquire(7, 1000); // miss, resident
        c.release(7);
        assert!(c.acquire(7, 1000), "resident entry hits");
        c.release(7);
        assert_eq!(c.quarantine_all(), 1);
        assert!(c.is_quarantined(7));
        assert!(c.is_empty());
        // Breaker open: forced rebuild, not a hit on stale state.
        assert!(!c.acquire(7, 1000), "quarantined key must rebuild");
        assert!(!c.is_quarantined(7), "rebuild closes the breaker");
        assert_eq!(c.quarantine_rebuilds, 1);
        // Followers share the rebuilt state again.
        assert!(c.acquire(7, 1000));
    }

    #[test]
    fn quarantine_blocks_sub_range_reuse_family_wide() {
        let mut c = BuildCache::new();
        c.acquire_range(7, 1000, FULL_RANGE);
        assert_eq!(c.quarantine_all(), 1);
        // The slice may not trust any of the family's torn state; its
        // rebuild closes the breaker for the family.
        assert_eq!(c.acquire_range(7, 250, (0, 64)), BuildHit::Miss);
        assert_eq!(c.quarantine_rebuilds, 1);
        // The full build is gone, so a full query must rebuild too (the
        // slice's fresh state does not cover it).
        assert_eq!(c.acquire_range(7, 1000, FULL_RANGE), BuildHit::Miss);
    }

    #[test]
    fn eviction_spares_pinned_entries() {
        let mut c = BuildCache::new();
        c.acquire(1, 100);
        c.acquire(2, 200);
        c.release(2);
        assert_eq!(c.evict_idle(), 200);
        assert_eq!(c.len(), 1);
        c.release(1);
        assert_eq!(c.evict_idle(), 100);
        assert!(c.is_empty());
    }
}
