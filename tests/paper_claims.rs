//! End-to-end assertions of the paper's headline claims, run against the
//! simulated AC922 at a coarse capacity scale.
//!
//! These complement the per-figure tests in `triton-bench`: each test
//! here corresponds to a sentence in the paper's abstract or discussion
//! (Section 6.3).

use triton_core::{CpuRadixJoin, HashScheme, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

const K: u64 = 2048;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// Abstract: "our Triton join outperforms a no-partitioning hash join by
/// more than 100x on the same GPU".
#[test]
fn triton_vs_npj_more_than_100x() {
    let hw = hw();
    let w = WorkloadSpec::paper_default(2048, K).generate();
    let triton = TritonJoin::default().run(&w, &hw).throughput_gtps();
    let npj_lp = NoPartitioningJoin::linear_probing()
        .run(&w, &hw)
        .throughput_gtps();
    assert!(
        triton > 100.0 * npj_lp,
        "Triton {triton} vs NPJ-LP {npj_lp}: only {:.0}x",
        triton / npj_lp
    );
}

/// Abstract: "... and a radix-partitioned join on the CPU by up to 2.5x".
/// Discussion: "a 2x speedup over a strong CPU baseline is possible even
/// when the state size exceeds the GPU memory capacity".
#[test]
fn triton_vs_cpu_radix() {
    let hw = hw();
    let mut best = 0.0f64;
    for m in [512u64, 1024, 2048] {
        let w = WorkloadSpec::paper_default(m, K).generate();
        let triton = TritonJoin::default().run(&w, &hw).throughput_gtps();
        let cpu = CpuRadixJoin::power9(HashScheme::BucketChaining)
            .run(&w, &hw)
            .throughput_gtps();
        assert!(triton > cpu, "{m} M: Triton {triton} <= CPU {cpu}");
        best = best.max(triton / cpu);
    }
    assert!(
        best > 1.5,
        "best Triton/CPU speedup {best:.2} (paper: up to 2.5x)"
    );
}

/// Fig 1 / Section 1: without the Triton join there is a regime where
/// the CPU beats the GPU ("CPU > GPU"), and the Triton join removes it.
#[test]
fn triton_removes_the_cpu_gpu_crossover() {
    let hw = hw();
    let w = WorkloadSpec::paper_default(2048, K).generate();
    let cpu = CpuRadixJoin::power9(HashScheme::Perfect)
        .run(&w, &hw)
        .throughput_gtps();
    let npj = NoPartitioningJoin::perfect().run(&w, &hw).throughput_gtps();
    let triton = TritonJoin {
        scheme: HashScheme::Perfect,
        ..TritonJoin::default()
    }
    .run(&w, &hw)
    .throughput_gtps();
    assert!(cpu > npj, "out-of-core: CPU {cpu} must beat NPJ {npj}");
    assert!(triton > cpu, "Triton {triton} must beat CPU {cpu}");
}

/// Section 6.2.1: the Triton join "retains 74% of its peak throughput"
/// at 2048 M tuples — graceful degradation instead of a cliff.
#[test]
fn graceful_degradation() {
    let hw = hw();
    let mut peak = 0.0f64;
    let mut last = 0.0f64;
    let mut prev: Option<f64> = None;
    for m in [128u64, 512, 1024, 1536, 2048] {
        let w = WorkloadSpec::paper_default(m, K).generate();
        let t = TritonJoin::default().run(&w, &hw).throughput_gtps();
        // No cliff: each step loses at most 25%.
        if let Some(p) = prev {
            assert!(t > p * 0.75, "{m} M: cliff from {p} to {t}");
        }
        peak = peak.max(t);
        last = t;
        prev = Some(t);
    }
    assert!(
        last / peak > 0.6,
        "retention {:.0}% (paper: 74%)",
        last / peak * 100.0
    );
}

/// Section 3.1's argument quantified: the CPU cannot partition fast
/// enough to saturate a fast interconnect (it would need ~260 GiB/s).
#[test]
fn cpu_partitioning_cannot_saturate_the_link() {
    let hw = hw();
    let link_gibs = triton_hw::LinkModel::new(&hw.link).effective_seq_bw() / (1u64 << 30) as f64;
    let tuples = 1_000_000u64;
    let t = triton_part::cpu_partition_time(tuples, 9, 1, &hw);
    let cpu_gibs = (tuples * 16) as f64 / (1u64 << 30) as f64 / t.as_secs();
    assert!(
        cpu_gibs < link_gibs / 1.5,
        "CPU partitions at {cpu_gibs:.1} GiB/s vs link {link_gibs:.1} GiB/s"
    );
}

/// Throughput is scale-invariant: the same modeled workload at different
/// capacity scale factors K yields (nearly) the same G tuples/s — the
/// property DESIGN.md's substitution argument rests on.
#[test]
fn throughput_invariant_under_capacity_scaling() {
    for m in [512u64, 2048] {
        let mut tputs = Vec::new();
        for k in [1024u64, 2048, 4096] {
            let hw = HwConfig::ac922().scaled(k);
            let w = WorkloadSpec::paper_default(m, k).generate();
            tputs.push(TritonJoin::default().run(&w, &hw).throughput_gtps());
        }
        let min = tputs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = tputs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max / min < 1.35,
            "{m} M: throughput varies {tputs:?} across K"
        );
    }
}

/// Skew handling (Section 6.2.6 / Fig 16 workloads): on the Zipf-1.5
/// paper workload the skew-aware executor — hotness-weighted placement,
/// LPT pipeline scheduling, and heavy-hitter chunking — beats the blind
/// uniform executor by at least 15%, because the blind pipeline
/// materializes the hot partition pair through a staging area sized for
/// the mean pair and pays the overflow round-trip over the link.
#[test]
fn skew_aware_beats_blind_executor_on_zipf_1_5() {
    use triton_core::{reference_join, SkewPolicy};
    let hw = HwConfig::ac922().scaled(512);
    let w = WorkloadSpec::skewed(512, 1.5, 512).generate();
    let expect = reference_join(&w);
    let off = TritonJoin::default().run(&w, &hw);
    let aware = TritonJoin {
        skew: SkewPolicy::aware(),
        ..TritonJoin::default()
    }
    .run(&w, &hw);
    assert_eq!(off.result, expect, "blind executor diverged");
    assert_eq!(aware.result, expect, "skew-aware executor diverged");
    assert!(
        aware.total.0 <= off.total.0 * 0.85,
        "skew-aware {} vs blind {}: only {:.1}% lower",
        aware.total,
        off.total,
        (1.0 - aware.total.0 / off.total.0) * 100.0
    );
    // The gap is the staging overflow the planner avoids.
    assert!(
        off.phases.iter().any(|p| p.name == "Spill"),
        "blind executor should overflow staging at theta = 1.5"
    );
    assert!(
        aware.phases.iter().all(|p| p.name != "Spill"),
        "skew-aware executor must not overflow staging"
    );
}

/// Determinism: two same-seed skew-aware runs produce byte-identical
/// results, reports, and replayed traces (schedule, placement and all).
#[test]
fn skew_aware_trace_replays_byte_identical() {
    use triton_core::{record_overlap, record_report, SkewPolicy};
    use triton_trace::{to_chrome_json, Trace};
    let hw = HwConfig::ac922().scaled(512);
    let render = || {
        let w = WorkloadSpec::skewed(512, 1.5, 512).generate();
        let rep = TritonJoin {
            skew: SkewPolicy::aware(),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        let mut trace = Trace::new();
        let end = record_report(&mut trace, 1, 1, 0.0, 1.0, &rep, &hw);
        record_overlap(
            &mut trace,
            1,
            2,
            3,
            end,
            1.0,
            rep.overlap.as_ref().unwrap(),
            rep.placement.as_ref(),
        );
        (rep.result, to_chrome_json(&trace))
    };
    let (r1, t1) = render();
    let (r2, t2) = render();
    assert_eq!(r1, r2, "same-seed results must be byte-identical");
    assert_eq!(t1, t2, "same-seed trace replay must be byte-identical");
    assert!(t1.contains("sched_pos"), "trace must carry the schedule");
    assert!(
        t1.contains("pair_gpu_bytes"),
        "trace must carry placement decisions"
    );
}
