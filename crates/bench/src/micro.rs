//! Minimal microbenchmark harness (in-tree replacement for Criterion,
//! which the offline build cannot fetch).
//!
//! The `[[bench]]` targets under `benches/` are `harness = false`
//! binaries driving this module: warm up, run a fixed number of timed
//! iterations, and report the median wall time plus derived throughput.
//! `--quick` (the flag CI passes to the Criterion smoke run) cuts the
//! iteration count; any other unknown flags are ignored so the targets
//! stay drop-in compatible with `cargo bench` invocations.

use std::time::Instant;

/// One benchmark group: a label plus shared element count for throughput.
pub struct Group {
    name: String,
    elements: u64,
    iters: usize,
}

/// True when `--quick` was passed on the command line.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

impl Group {
    /// Start a group. `elements` is the per-iteration element count used
    /// for throughput reporting (0 = no throughput column).
    pub fn new(name: impl Into<String>, elements: u64) -> Self {
        let name = name.into();
        println!("\n== bench group: {name}");
        Group {
            name,
            elements,
            iters: if quick() { 3 } else { 10 },
        }
    }

    /// Override the element count for subsequent benchmarks.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = elements;
        self
    }

    /// Time `f` and print its median iteration time and throughput.
    /// Returns the median seconds per iteration.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) -> f64 {
        // One warmup iteration (results discarded, keeps caches honest).
        let sink = f();
        drop(sink);
        let mut times: Vec<f64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                let r = f();
                let dt = t0.elapsed().as_secs_f64();
                drop(r);
                dt
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        if self.elements > 0 {
            println!(
                "{}/{label:<28} {:>10.3} ms/iter  {:>9.2} M elem/s",
                self.name,
                median * 1e3,
                self.elements as f64 / median / 1e6
            );
        } else {
            println!("{}/{label:<28} {:>10.3} ms/iter", self.name, median * 1e3);
        }
        median
    }
}
