//! Microbenchmarks of the simulator's primitives: hash tables, the TLB
//! simulator, the link cost model, and the interleave mapping (in-tree
//! harness, see `triton_bench::micro`).

use triton_bench::micro::Group;
use triton_core::{BucketChainTable, LinearProbeTable, PerfectArrayTable};
use triton_datagen::Lcg;
use triton_hw::link::LinkModel;
use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::HwConfig;
use triton_mem::InterleavePattern;

fn bench_hash_tables() {
    let n = 100_000usize;
    let keys: Vec<u64> = (1..=n as u64).collect();
    let rids: Vec<u64> = keys.iter().map(|k| k * 3).collect();

    let g = Group::new("hash_tables", n as u64);
    g.bench("bucket_chain_build", || {
        BucketChainTable::build(&keys, &rids, 2048, 0)
    });
    let bc = BucketChainTable::build(&keys, &rids, 2048, 0);
    g.bench("bucket_chain_probe", || {
        keys.iter().map(|&k| bc.probe(k).1 as u64).sum::<u64>()
    });
    g.bench("linear_probe_build", || {
        LinearProbeTable::build(&keys, &rids, 0.5)
    });
    let (lp, _) = LinearProbeTable::build(&keys, &rids, 0.5);
    g.bench("linear_probe_probe", || {
        keys.iter().map(|&k| lp.probe(k).1 as u64).sum::<u64>()
    });
    let pf = PerfectArrayTable::build(&keys, &rids, n);
    g.bench("perfect_probe", || {
        keys.iter().filter_map(|&k| pf.probe(k)).sum::<u64>()
    });
}

fn bench_tlb() {
    let hw = HwConfig::ac922().scaled(1024);
    let g = Group::new("tlb_sim", 100_000);
    let mut tlb = TlbSim::new(&hw);
    let reach = tlb.entry_reach().0;
    g.bench("translate_thrash", || {
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc += tlb.translate(i * reach, MemSide::Cpu) as u64;
        }
        acc
    });
}

fn bench_link_and_lcg() {
    let link = LinkModel::new(&HwConfig::ac922().link);
    let g = Group::new("primitives", 0);
    g.bench("link_write_at", || {
        let mut acc = 0u64;
        for off in (0..100_000u64).step_by(37) {
            acc += link.write_at(off, 48).wire_data_dir.0;
        }
        acc
    });
    g.bench("lcg_full_period_16", || {
        Lcg::new(16, 1).take(1 << 16).sum::<u64>()
    });
    let p = InterleavePattern::from_fraction(0.37);
    g.bench("interleave_side_of", || {
        (0..100_000u64)
            .filter(|&i| p.side_of_page(i) == MemSide::Gpu)
            .count()
    });
}

fn main() {
    bench_hash_tables();
    bench_tlb();
    bench_link_and_lcg();
}
