//! Table 1: partitioning design goals, measured.
fn main() {
    triton_bench::figs::table1::print(&triton_bench::hw());
}
