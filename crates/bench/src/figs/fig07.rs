//! Fig 7: TLB miss latency for GPU memory and for CPU memory over
//! NVLink 2.0, measured by fine-grained pointer chasing.
//!
//! The pointer chase strides through a memory range so that every access
//! lands on a fresh TLB-entry region; once the range exceeds a level's
//! coverage, the measured latency steps up to the next plateau. Ranges on
//! the x-axis are in *modeled* GiB (the simulated coverages are scaled by
//! K, so the plateaus appear at the paper's positions); latencies are
//! unscaled nanoseconds directly comparable with the paper's.

use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::HwConfig;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Which memory was chased.
    pub side: MemSide,
    /// Range in modeled GiB (paper axis).
    pub range_gib: f64,
    /// Stride in modeled MiB.
    pub stride_mib: u64,
    /// Average access latency in ns.
    pub latency_ns: f64,
}

/// Pointer-chase `accesses` times with `stride` within `range` (both in
/// actual scaled bytes) and return the average latency.
pub fn chase(hw: &HwConfig, side: MemSide, range: u64, stride: u64, accesses: u64) -> f64 {
    let mut tlb = TlbSim::new(hw);
    let mut addr = 0u64;
    // Warm-up round: the paper measures steady-state latencies.
    for _ in 0..accesses {
        tlb.access_latency(addr, side);
        addr = (addr + stride) % range.max(1);
    }
    let mut total = 0.0;
    for _ in 0..accesses {
        total += tlb.access_latency(addr, side).0;
        addr = (addr + stride) % range.max(1);
    }
    total / accesses as f64
}

/// Run both panels: GPU memory (6-10.7 GiB modeled) and CPU memory
/// (1-87.5 GiB modeled), strides 16/32/64 MiB modeled.
pub fn run(hw: &HwConfig) -> Vec<Row> {
    let k = hw.scale;
    let gib = 1u64 << 30;
    let mib = 1u64 << 20;
    let mut rows = Vec::new();
    let accesses = 4096;
    for &(side, ranges) in &[
        (
            MemSide::Gpu,
            &[6.0f64, 6.5, 7.0, 7.5, 8.0, 8.5, 9.0, 9.8, 10.7][..],
        ),
        (
            MemSide::Cpu,
            &[
                1.0, 2.0, 4.0, 8.0, 9.5, 16.0, 24.0, 32.0, 37.0, 48.0, 64.0, 87.5,
            ][..],
        ),
    ] {
        for &range_gib in ranges {
            for stride_mib in [16u64, 32, 64] {
                let range = ((range_gib * gib as f64) as u64 / k).max(1);
                let stride = (stride_mib * mib / k).max(1);
                rows.push(Row {
                    side,
                    range_gib,
                    stride_mib,
                    latency_ns: chase(hw, side, range, stride, accesses),
                });
            }
        }
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig) {
    crate::banner("Fig 7", "TLB miss latency (pointer chase)");
    let mut t = crate::Table::new(["memory", "range (GiB)", "stride (MiB)", "latency (ns)"]);
    for r in run(hw) {
        t.row([
            format!("{:?}", r.side),
            format!("{:.1}", r.range_gib),
            r.stride_mib.to_string(),
            crate::f1(r.latency_ns),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(1024)
    }

    fn avg_latency(rows: &[Row], side: MemSide, lo: f64, hi: f64) -> f64 {
        avg_latency_stride(rows, side, lo, hi, None)
    }

    fn avg_latency_stride(
        rows: &[Row],
        side: MemSide,
        lo: f64,
        hi: f64,
        stride: Option<u64>,
    ) -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| {
                r.side == side
                    && r.range_gib >= lo
                    && r.range_gib <= hi
                    && stride.is_none_or(|s| r.stride_mib == s)
            })
            .map(|r| r.latency_ns)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn gpu_memory_plateaus() {
        let rows = run(&hw());
        // Within the 8 GiB L2 coverage: ~151.9 ns; beyond: ~226.7 ns.
        let hit = avg_latency(&rows, MemSide::Gpu, 6.0, 7.5);
        let miss = avg_latency(&rows, MemSide::Gpu, 9.8, 10.7);
        assert!((140.0..=170.0).contains(&hit), "hit {hit}");
        assert!((185.0..=235.0).contains(&miss), "miss {miss}");
    }

    #[test]
    fn cpu_memory_three_plateaus() {
        let rows = run(&hw());
        let l2 = avg_latency(&rows, MemSide::Cpu, 1.0, 4.0);
        let l3_star = avg_latency(&rows, MemSide::Cpu, 16.0, 32.0);
        // The 32 MiB stride touches a fresh translation entry on every
        // access; wider strides halve the tag count and can fall back
        // under the IOTLB capacity at mid ranges.
        let miss_star = avg_latency_stride(&rows, MemSide::Cpu, 48.0, 87.5, Some(32));
        assert!((430.0..=480.0).contains(&l2), "L2 plateau {l2}");
        assert!((500.0..=600.0).contains(&l3_star), "L3* plateau {l3_star}");
        assert!(
            (2500.0..=3300.0).contains(&miss_star),
            "Miss* plateau {miss_star}"
        );
    }

    #[test]
    fn plateaus_ordered() {
        let rows = run(&hw());
        let l2 = avg_latency(&rows, MemSide::Cpu, 1.0, 4.0);
        let l3 = avg_latency(&rows, MemSide::Cpu, 16.0, 32.0);
        let miss = avg_latency_stride(&rows, MemSide::Cpu, 64.0, 87.5, Some(32));
        assert!(l2 < l3 && l3 < miss);
    }
}
