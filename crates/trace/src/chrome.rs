//! Chrome `trace_event` JSON export and shape validation.
//!
//! The emitted file is the "JSON array format" that `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev) load directly: one metadata
//! event per named track (so queries appear as labeled rows), then every
//! recorded event as a complete span (`ph: "X"`) or a thread-scoped
//! instant (`ph: "i"`). Timestamps are microseconds per the format spec;
//! the simulated-nanosecond source values divide by 1000 exactly once,
//! here.

use crate::event::{AttrValue, EventKind, TraceEvent};
use crate::json::{push_f64, push_str_lit};
use crate::recorder::Trace;

fn push_attrs(out: &mut String, ev: &TraceEvent) {
    out.push('{');
    for (i, a) in ev.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(out, &a.key);
        out.push(':');
        match &a.value {
            AttrValue::U64(v) => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            AttrValue::I64(v) => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            AttrValue::F64(v) => push_f64(out, *v),
            AttrValue::Str(v) => push_str_lit(out, v),
            AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
    out.push('}');
}

fn push_meta(out: &mut String, kind: &str, pid: u64, tid: u64, label: &str) {
    let _ = std::fmt::Write::write_fmt(
        out,
        format_args!("{{\"name\":\"{kind}\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"),
    );
    push_str_lit(out, label);
    out.push_str("}},\n");
}

/// Encode a [`Trace`] as Chrome `trace_event` JSON. Deterministic:
/// equal traces produce byte-identical output (track metadata is sorted
/// by id; events keep their recording order).
#[must_use]
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 96);
    out.push_str("[\n");
    for (pid, name) in trace.processes() {
        push_meta(&mut out, "process_name", pid, 0, name);
    }
    for (pid, tid, name) in trace.threads() {
        push_meta(&mut out, "thread_name", pid, tid, name);
    }
    for (i, ev) in trace.events().iter().enumerate() {
        out.push('{');
        out.push_str("\"name\":");
        push_str_lit(&mut out, &ev.name);
        match ev.kind {
            EventKind::Span { dur_ns } => {
                out.push_str(",\"ph\":\"X\",\"ts\":");
                push_f64(&mut out, ev.ts_ns / 1e3);
                out.push_str(",\"dur\":");
                push_f64(&mut out, dur_ns / 1e3);
            }
            // triton-lint: allow(d2) -- matches the Chrome instant variant, not std::time::Instant
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                push_f64(&mut out, ev.ts_ns / 1e3);
            }
            EventKind::Counter => {
                out.push_str(",\"ph\":\"C\",\"ts\":");
                push_f64(&mut out, ev.ts_ns / 1e3);
            }
        }
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(",\"pid\":{},\"tid\":{},\"args\":", ev.pid, ev.tid),
        );
        push_attrs(&mut out, ev);
        out.push('}');
        if i + 1 < trace.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Check that `json` is a Chrome `trace_event` array whose every event
/// object carries the required keys (`name`, `ph`, `ts`, `pid`, `tid`).
/// Returns the event count (metadata events included). This is a shape
/// check against the trace_event contract, not a full JSON parser — the
/// encoder above is the only producer, and its output is line-oriented.
pub fn validate_chrome(json: &str) -> Result<usize, String> {
    let body = json.trim();
    if !body.starts_with('[') || !body.ends_with(']') {
        return Err("not a JSON array".to_string());
    }
    let mut events = 0usize;
    let mut depth = 0u32;
    let mut in_str = false;
    let mut escaped = false;
    let mut obj_start = 0usize;
    for (i, c) in body.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    let obj = &body[obj_start..=i];
                    for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                        if !obj.contains(key) {
                            return Err(format!("event {events} is missing {key}"));
                        }
                    }
                    // A counter sample with no series is invisible to
                    // Perfetto: require at least one args entry.
                    if obj.contains("\"ph\":\"C\"")
                        && (!obj.contains("\"args\":{") || obj.contains("\"args\":{}"))
                    {
                        return Err(format!("counter event {events} has no args series"));
                    }
                    events += 1;
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced braces or unterminated string".to_string());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attr;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.name_process(1, "q0:dash");
        t.name_thread(1, 0, "lifecycle");
        t.span(1, 0, "part_1", 1000.0, 500.0)
            .attr(Attr::u64("bytes_moved_link", 4096))
            .attr(Attr::str("operator", "triton"))
            .attr(Attr::bool("cache_hit", true));
        t.instant(1, 0, "admit", 1000.0)
            .attr(Attr::f64("backoff_ns", 0.5));
        t
    }

    #[test]
    fn export_has_required_keys_and_validates() {
        let json = to_chrome_json(&sample());
        for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "\"name\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // 2 events + 2 metadata rows.
        assert_eq!(validate_chrome(&json), Ok(4));
        // Timestamps are microseconds: 1000 ns -> 1 us.
        assert!(json.contains("\"ts\":1,"), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"cache_hit\":true"));
    }

    #[test]
    fn counter_events_export_as_ph_c_and_validate() {
        let mut t = Trace::new();
        t.name_thread(0, 2, "gauges");
        t.counter(0, 2, "gpu_mem", 2000.0)
            .attr(Attr::u64("used_bytes", 1 << 20))
            .attr(Attr::u64("fragmentation_bytes", 4096));
        let json = to_chrome_json(&t);
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        // Timestamps are microseconds: 2000 ns -> 2 us.
        assert!(json.contains("\"ph\":\"C\",\"ts\":2,"), "{json}");
        assert!(json.contains("\"used_bytes\":1048576"), "{json}");
        assert_eq!(validate_chrome(&json), Ok(2));
    }

    #[test]
    fn validation_rejects_counter_without_series() {
        let mut t = Trace::new();
        t.counter(0, 2, "empty_gauge", 0.0);
        let json = to_chrome_json(&t);
        let err = validate_chrome(&json).unwrap_err();
        assert!(err.contains("no args series"), "{err}");
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(to_chrome_json(&sample()), to_chrome_json(&sample()));
    }

    #[test]
    fn validation_rejects_malformed_input() {
        assert!(validate_chrome("{}").is_err());
        assert!(validate_chrome("[{\"ph\":\"X\"}]").is_err());
        assert!(validate_chrome("[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,").is_err());
        assert_eq!(validate_chrome("[]"), Ok(0));
    }

    #[test]
    fn escaping_survives_validation() {
        let mut t = Trace::new();
        t.instant(1, 0, "weird \"name\" with { braces }", 0.0);
        let json = to_chrome_json(&t);
        assert_eq!(validate_chrome(&json), Ok(1));
    }
}
