//! Fig 15: Triton join time breakdown and stall analysis.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig15::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
