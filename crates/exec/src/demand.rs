//! Resource-demand extraction: turn a dedicated-run [`JoinReport`] into
//! the [`ResourceVector`] the inter-query arbiter shares the machine by.
//!
//! The paper's Section 5.2 overlaps stages *within* one join because they
//! bottleneck on different resources (transfer vs. compute). The serving
//! runtime applies the same reasoning *across* queries: each query's
//! dedicated profile says how busy it keeps the interconnect, GPU memory,
//! the SM issue slots, the IOMMU walker, and the host CPU; queries whose
//! bottlenecks are disjoint overlap nearly for free, while queries
//! contending on one resource split it.

use triton_core::JoinReport;
use triton_hw::units::Ns;
use triton_hw::ResourceVector;

/// Phases that (re-)process the build relation and are skipped when a
/// shared partitioned build side is already resident.
const BUILD_PHASES: [&str; 2] = ["PS 1", "Part 1"];

/// What one query asks of the machine while it runs.
#[derive(Debug, Clone, Copy)]
pub struct ResourceDemand {
    /// Busy fraction of each machine resource during a dedicated run.
    pub vector: ResourceVector,
    /// Dedicated-run duration — the service requirement the scheduler
    /// drains at the arbitrated speed.
    pub work: Ns,
}

impl ResourceDemand {
    /// Extract the demand from a dedicated-run report.
    ///
    /// When `build_cached` is set, the build side's share of the first
    /// partitioning pass is discounted: those phases process R and S
    /// together, and a probe batch reusing a cached partitioned build
    /// relation only re-partitions S — `probe_frac` (S's byte share of
    /// the pass-1 input) of the phase remains.
    pub fn from_report(report: &JoinReport, build_cached: bool, probe_frac: f64) -> Self {
        let probe_frac = probe_frac.clamp(0.0, 1.0);
        let mut link = 0.0;
        let mut gpu_mem = 0.0;
        let mut compute = 0.0;
        let mut tlb = 0.0;
        let mut cpu = 0.0;
        let mut saved = 0.0;
        for p in &report.phases {
            let f = if build_cached && BUILD_PHASES.contains(&p.name.as_str()) {
                saved += p.time.0 * (1.0 - probe_frac);
                probe_frac
            } else {
                1.0
            };
            match &p.timing {
                Some(t) => {
                    link += t.t_link.0 * f;
                    gpu_mem += t.t_gpu_mem.0 * f;
                    compute += (t.t_compute.0 + t.t_sync.0) * f;
                    tlb += t.t_tlb.0 * f;
                }
                None => cpu += p.time.0 * f,
            }
        }
        // Pipeline overlap makes phase sums exceed the critical path;
        // busy fractions are relative to the *dedicated wall time*, so a
        // resource saturated the whole run caps at 1.
        let work = (report.total.0 - saved).max(1.0);
        let frac = |busy: f64| (busy / work).clamp(0.0, 1.0);
        ResourceDemand {
            vector: ResourceVector {
                link: frac(link),
                gpu_mem: frac(gpu_mem),
                compute: frac(compute),
                tlb: frac(tlb),
                cpu: frac(cpu),
            },
            work: Ns(work),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_core::TritonJoin;
    use triton_datagen::WorkloadSpec;
    use triton_hw::HwConfig;

    fn report() -> (JoinReport, HwConfig) {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 2048).generate();
        (TritonJoin::default().run(&w, &hw), hw)
    }

    #[test]
    fn fractions_are_valid_and_nontrivial() {
        let (rep, _) = report();
        let d = ResourceDemand::from_report(&rep, false, 0.5);
        let v = [
            d.vector.link,
            d.vector.gpu_mem,
            d.vector.compute,
            d.vector.tlb,
            d.vector.cpu,
        ];
        for f in v {
            assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        }
        assert!(d.vector.peak() > 0.1, "a join must stress something");
        assert!(d.work.0 > 0.0);
    }

    #[test]
    fn build_sharing_discounts_work() {
        let (rep, _) = report();
        let full = ResourceDemand::from_report(&rep, false, 0.5);
        let shared = ResourceDemand::from_report(&rep, true, 0.5);
        assert!(
            shared.work.0 < full.work.0,
            "cached build side must shorten the run: {} vs {}",
            shared.work.0,
            full.work.0
        );
        // A full probe_frac (S is the whole input) discounts nothing.
        let no_op = ResourceDemand::from_report(&rep, true, 1.0);
        assert!((no_op.work.0 - full.work.0).abs() < 1e-6);
    }
}
