//! A small recursive-descent parser over the lexer's token stream —
//! just enough structure for the flow-aware rule families: items and
//! `fn` bodies, let-bindings, statement/expression boundaries, postfix
//! chains (calls, method calls, field accesses, `?`), struct literals,
//! and `match` expressions with their arm patterns.
//!
//! It deliberately models **no types, no traits, no generics beyond
//! skipping turbofish**, and it is *forgiving*: any construct it cannot
//! parse degrades to an [`Expr::Opaque`] node that still exposes
//! whatever sub-expressions were recoverable, and the parser always
//! makes forward progress (a malformed file yields a partial AST, never
//! a panic or a hang). Rules that need full fidelity belong in `rustc`,
//! not here — see DESIGN.md §13 for what the parser deliberately does
//! not model.

use crate::lexer::{TokKind, Token};

/// One parsed function (free, associated, or nested), with its body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the `fn` keyword sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Body statements (empty for bodyless trait declarations).
    pub stmts: Vec<Stmt>,
}

/// A parsed file: every function found anywhere in it, in source order.
#[derive(Debug, Default)]
pub struct Ast {
    /// All functions, including those nested in `impl`/`mod` blocks and
    /// inside other function bodies.
    pub fns: Vec<FnItem>,
}

/// One statement of a function body.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` (with optional `else` block).
    Let {
        /// The single identifier the pattern binds, when the pattern is
        /// simple enough to tell (`let x`, `let mut x`, `let Ok(x)`).
        name: Option<String>,
        /// `let _ = ...` — the value is deliberately discarded.
        discard: bool,
        /// Initializer expression, when present.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement; `semi` distinguishes `expr;` (value
    /// dropped) from a trailing tail expression (value returned).
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` (or the brace of a block-like statement)
        /// discards the value.
        semi: bool,
    },
}

/// One arm of a `match` expression.
#[derive(Debug)]
pub struct Arm {
    /// The arm's pattern, structurally summarized.
    pub pat: Pattern,
    /// The arm's body expression.
    pub body: Expr,
}

/// Structural summary of a match-arm pattern — everything the
/// exhaustiveness rule needs, nothing more.
#[derive(Debug)]
pub struct Pattern {
    /// The pattern (ignoring any `if` guard) is the bare wildcard `_`.
    pub is_wildcard: bool,
    /// First segments of every `A::B` path mentioned anywhere in the
    /// pattern (`FaultKind` for `Some(FaultKind::KernelFault)`).
    pub path_roots: Vec<String>,
    /// Whether the arm carries an `if` guard.
    pub has_guard: bool,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// A parsed expression. Only the shapes the semantic rules inspect get
/// dedicated variants; everything else is [`Expr::Opaque`] with its
/// recoverable children attached.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly multi-segment) path: `x`, `KernelCost::new`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// A literal token.
    Lit {
        /// Literal class from the lexer.
        kind: TokKind,
        /// Source text (empty for string/char literals).
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// `callee(args...)`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// 1-based line of the opening parenthesis.
        line: u32,
    },
    /// `recv.name(args...)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments in order (excluding the receiver).
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: u32,
    },
    /// `recv.name` (also tuple indices: `recv.0`).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name or tuple index text.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    Struct {
        /// Path segments of the struct name.
        segs: Vec<String>,
        /// Named fields in order (shorthand fields get a synthesized
        /// path expression as their value).
        fields: Vec<(String, Expr)>,
        /// The functional-update `..base` expression, when present.
        rest: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// 1-based line of the `match` keyword.
        line: u32,
    },
    /// `lhs <op>= rhs` for any assignment operator.
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
    },
    /// `lhs op rhs` for non-assignment binary operators.
    Binary {
        /// Operator text (`+`, `==`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
    },
    /// `expr?`.
    Try {
        /// The propagated expression.
        expr: Box<Expr>,
        /// 1-based line of the `?`.
        line: u32,
    },
    /// `return expr` / bare `return`.
    Return {
        /// Returned value, when present.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// A block `{ ... }`; also the bodies of `if`/`loop`/closures.
    Block {
        /// Statements in order.
        stmts: Vec<Stmt>,
        /// 1-based line of the opening brace.
        line: u32,
    },
    /// Anything else (tuples, arrays, macros, loops, casts, unary ops,
    /// `if` conditions + branches, ...) with recoverable children.
    Opaque {
        /// Sub-expressions found inside, in source order.
        children: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
}

impl Expr {
    /// The expression's source line.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Match { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Try { line, .. }
            | Expr::Return { line, .. }
            | Expr::Block { line, .. }
            | Expr::Opaque { line, .. } => *line,
        }
    }
}

/// Parse a token stream (with its per-token test-region flags) into the
/// flat function list the semantic rules walk. Never fails: malformed
/// regions degrade to opaque nodes or are skipped.
pub fn parse(tokens: &[Token], in_test: &[bool]) -> Ast {
    let mut p = Parser {
        toks: tokens,
        in_test,
        pos: 0,
        fuel: tokens.len().saturating_mul(8) + 1024,
        depth: 0,
    };
    let mut ast = Ast::default();
    while p.pos < p.toks.len() && p.burn() {
        if p.at_fn_item() {
            if let Some(f) = p.parse_fn(&mut ast) {
                ast.fns.push(f);
            }
        } else {
            p.pos += 1;
        }
    }
    ast
}

const TERMINATORS: [&str; 6] = [",", ";", ")", "}", "]", "=>"];

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    pos: usize,
    /// Hard progress bound: every parser step burns one unit, so even a
    /// pathological token stream terminates.
    fuel: usize,
    /// Current recursion depth; past [`MAX_DEPTH`], nested constructs
    /// collapse to opaque nodes so deep nesting can't overflow the
    /// stack.
    depth: usize,
}

/// Recursion ceiling for the mutually recursive expression/block
/// parsers. Real code nests a handful deep; this is pure overflow
/// armor.
const MAX_DEPTH: usize = 200;

impl<'a> Parser<'a> {
    fn burn(&mut self) -> bool {
        if self.fuel == 0 {
            self.pos = self.toks.len();
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn tok(&self, at: usize) -> Option<&Token> {
        self.toks.get(at)
    }

    fn text(&self, at: usize) -> &str {
        self.tok(at).map_or("", |t| t.text.as_str())
    }

    fn line(&self, at: usize) -> u32 {
        self.tok(at).map_or(0, |t| t.line)
    }

    fn is_ident(&self, at: usize) -> bool {
        self.tok(at).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Longest operator spelled by consecutive single-char punct tokens
    /// starting at `at` (the lexer emits puncts one character at a
    /// time). A lone punct returns itself; non-punct tokens return an
    /// empty op. Returns `(op, token_count)`.
    fn punct_run(&self, at: usize) -> (String, usize) {
        let first = match self.tok(at) {
            Some(t) if t.kind == TokKind::Punct => t.text.clone(),
            _ => return (String::new(), 0),
        };
        let mut op = first;
        let mut n = 1;
        for k in 1..3 {
            let next = match self.tok(at + k) {
                Some(t) if t.kind == TokKind::Punct => t.text.as_str(),
                _ => break,
            };
            let mut ext = op.clone();
            ext.push_str(next);
            // Only extend into real multi-char operators.
            let keep = matches!(
                ext.as_str(),
                "==" | "!="
                    | "<="
                    | ">="
                    | "&&"
                    | "||"
                    | "<<"
                    | ">>"
                    | "+="
                    | "-="
                    | "*="
                    | "/="
                    | "%="
                    | "^="
                    | ".."
                    | "..="
                    | "::"
                    | "->"
                    | "=>"
                    | "<<="
                    | ">>="
                    | "&="
                    | "|="
            );
            if !keep {
                break;
            }
            op = ext;
            n += 1;
        }
        (op, n)
    }

    /// Is `pos` at an item-style `fn` (keyword, name, then `(` or `<`)?
    /// Excludes function-pointer types (`fn(u8)`) which lack the name.
    fn at_fn_item(&self) -> bool {
        self.text(self.pos) == "fn"
            && self.is_ident(self.pos + 1)
            && matches!(self.text(self.pos + 2), "(" | "<")
    }

    /// Parse `fn name ... { body }` (or a bodyless declaration).
    fn parse_fn(&mut self, ast: &mut Ast) -> Option<FnItem> {
        let line = self.line(self.pos);
        let is_test = self.in_test.get(self.pos).copied().unwrap_or(false);
        self.pos += 1; // `fn`
        let name = self.text(self.pos).to_string();
        self.pos += 1;
        // Signature: skip to the body `{` (or `;` for declarations) at
        // paren/bracket depth zero. Angle brackets are ignored — a `{`
        // cannot appear in the signatures this workspace writes.
        let mut depth = 0i32;
        while self.pos < self.toks.len() && self.burn() {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    self.pos += 1;
                    return Some(FnItem {
                        name,
                        line,
                        is_test,
                        stmts: Vec::new(),
                    });
                }
                _ => {}
            }
            self.pos += 1;
        }
        // Nested `fn` items recurse through here without touching
        // parse_expr, so the depth guard must count this hop too.
        self.depth += 1;
        let stmts = match self.parse_block(ast) {
            Some(Expr::Block { stmts, .. }) => stmts,
            _ => Vec::new(),
        };
        self.depth -= 1;
        Some(FnItem {
            name,
            line,
            is_test,
            stmts,
        })
    }

    /// Parse `{ stmt* }`; the cursor must sit on the `{`.
    fn parse_block(&mut self, ast: &mut Ast) -> Option<Expr> {
        if self.text(self.pos) != "{" {
            return None;
        }
        let line = self.line(self.pos);
        if self.depth >= MAX_DEPTH {
            self.skip_balanced("{", "}");
            return Some(Expr::Block {
                stmts: Vec::new(),
                line,
            });
        }
        self.pos += 1;
        let mut stmts = Vec::new();
        while self.pos < self.toks.len() && self.burn() {
            match self.text(self.pos) {
                "}" => {
                    self.pos += 1;
                    return Some(Expr::Block { stmts, line });
                }
                ";" => {
                    self.pos += 1;
                    // A bare `;` also turns the previous tail expression
                    // into a dropped-value statement.
                    if let Some(Stmt::Expr { semi, .. }) = stmts.last_mut() {
                        *semi = true;
                    }
                }
                "let" => stmts.push(self.parse_let(ast)),
                _ if self.at_fn_item() => {
                    if let Some(f) = self.parse_fn(ast) {
                        ast.fns.push(f);
                    }
                }
                _ => {
                    let before = self.pos;
                    let expr = self.parse_expr(0, false, ast);
                    let semi = if self.text(self.pos) == ";" {
                        self.pos += 1;
                        true
                    } else {
                        // Block-like statements (`if`, `match`, loops)
                        // in statement position discard their value too;
                        // the distinction only matters for the *last*
                        // statement, where no `;` means a tail value.
                        false
                    };
                    stmts.push(Stmt::Expr { expr, semi });
                    if self.pos == before {
                        self.pos += 1; // guarantee progress
                    }
                }
            }
        }
        Some(Expr::Block { stmts, line })
    }

    /// Parse `let <pat>(: ty)? (= init)? (else block)? ;`.
    fn parse_let(&mut self, ast: &mut Ast) -> Stmt {
        let line = self.line(self.pos);
        self.pos += 1; // `let`
                       // Collect pattern (and optional type) tokens up to a top-level
                       // `=` or `;`. Angle depth guards `Vec<T>` in annotations.
        let pat_start = self.pos;
        let mut depth = 0i32;
        let mut angle = 0i32;
        while self.pos < self.toks.len() && self.burn() {
            let (op, n) = self.punct_run(self.pos);
            match op.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break; // malformed; bail before eating the scope
                    }
                    depth -= 1;
                }
                "<" => angle += 1,
                ">" => angle -= 1,
                "->" | "==" | ">=" | "<=" | "=>" | ".." | "..=" | "::" | "<<" | ">>" => {}
                "=" if depth == 0 && angle <= 0 => break,
                ";" if depth == 0 => break,
                _ => {}
            }
            self.pos += n.max(1);
        }
        let (name, discard) = self.pattern_binding(pat_start, self.pos);
        let mut init = None;
        if self.text(self.pos) == "=" {
            self.pos += 1;
            init = Some(self.parse_expr(0, false, ast));
        }
        // let-else: the diverging block is parsed for completeness but
        // carries no binding information we track.
        if self.text(self.pos) == "else" {
            self.pos += 1;
            let _ = self.parse_block(ast);
        }
        if self.text(self.pos) == ";" {
            self.pos += 1;
        }
        Stmt::Let {
            name,
            discard,
            init,
            line,
        }
    }

    /// Extract the single bound identifier of a pattern token range, if
    /// the pattern is simple enough to tell: `x`, `mut x`, `Ok(x)`,
    /// `Some(mut x)`. Returns `(name, is_discard)`.
    fn pattern_binding(&self, start: usize, end: usize) -> (Option<String>, bool) {
        let mut binds: Vec<String> = Vec::new();
        let mut i = start;
        let mut saw_wild = false;
        while i < end {
            let t = match self.tok(i) {
                Some(t) => t,
                None => break,
            };
            // Stop at the type annotation: bindings live left of `:`
            // (but not `::` path separators).
            if t.text == ":" && self.text(i + 1) != ":" && self.text(i.wrapping_sub(1)) != ":" {
                break;
            }
            if t.kind == TokKind::Ident {
                let starts_path = self.text(i + 1) == ":" && self.text(i + 2) == ":";
                let is_path_seg =
                    starts_path || (i >= 2 && self.text(i - 1) == ":" && self.text(i - 2) == ":");
                let keyword = matches!(t.text.as_str(), "mut" | "ref" | "box");
                let type_like = t
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase());
                if !is_path_seg && !keyword && !type_like {
                    binds.push(t.text.clone());
                }
            }
            if t.text == "_" {
                saw_wild = true;
            }
            i += 1;
        }
        match binds.len() {
            1 => (binds.pop(), false),
            0 => (None, saw_wild),
            _ => (None, false),
        }
    }

    /// Pratt expression parser. `no_struct` suppresses struct-literal
    /// parsing in scrutinee/condition position (matching Rust's own
    /// restriction).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool, ast: &mut Ast) -> Expr {
        if self.depth >= MAX_DEPTH {
            let line = self.line(self.pos);
            if self.pos < self.toks.len() {
                self.pos += 1; // keep making progress while degrading
            }
            return Expr::Opaque {
                children: Vec::new(),
                line,
            };
        }
        self.depth += 1;
        let out = self.parse_expr_at_depth(min_bp, no_struct, ast);
        self.depth -= 1;
        out
    }

    fn parse_expr_at_depth(&mut self, min_bp: u8, no_struct: bool, ast: &mut Ast) -> Expr {
        let mut lhs = self.parse_prefix(no_struct, ast);
        loop {
            if !self.burn() {
                return lhs;
            }
            // Postfix: `.field`, `.method(...)`, `(...)`, `[...]`, `?`.
            match self.text(self.pos) {
                "." if self.punct_run(self.pos).0 == "." => {
                    lhs = self.parse_postfix_dot(lhs, ast);
                    continue;
                }
                "(" => {
                    let line = self.line(self.pos);
                    let args = self.parse_paren_list(ast);
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        line,
                    };
                    continue;
                }
                "[" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    let idx = self.parse_expr(0, false, ast);
                    if self.text(self.pos) == "]" {
                        self.pos += 1;
                    }
                    lhs = Expr::Opaque {
                        children: vec![lhs, idx],
                        line,
                    };
                    continue;
                }
                "?" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    lhs = Expr::Try {
                        expr: Box::new(lhs),
                        line,
                    };
                    continue;
                }
                _ => {}
            }
            // Binary / assignment operators.
            let (op, ntoks) = self.punct_run(self.pos);
            let is_as = self.text(self.pos) == "as";
            let bp = if is_as { 26 } else { binary_bp(&op) };
            if bp == 0 || bp < min_bp || TERMINATORS.contains(&op.as_str()) {
                return lhs;
            }
            let line = self.line(self.pos);
            if is_as {
                self.pos += 1;
                self.skip_type();
                lhs = Expr::Opaque {
                    children: vec![lhs],
                    line,
                };
                continue;
            }
            self.pos += ntoks;
            let assign = op == "=" || (op.len() >= 2 && op.ends_with('=') && is_compound(&op));
            let rhs = self.parse_expr(if assign { bp } else { bp + 1 }, no_struct, ast);
            lhs = if assign {
                Expr::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            } else {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            };
        }
    }

    /// `.field` / `.0` / `.method(args)` (with optional turbofish).
    fn parse_postfix_dot(&mut self, recv: Expr, ast: &mut Ast) -> Expr {
        self.pos += 1; // `.`
        let line = self.line(self.pos);
        let name = self.text(self.pos).to_string();
        let named = self
            .tok(self.pos)
            .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::Int));
        if !named {
            return Expr::Opaque {
                children: vec![recv],
                line,
            };
        }
        self.pos += 1;
        // Turbofish: `.collect::<Vec<_>>()`.
        if self.punct_run(self.pos).0 == "::" && self.text(self.pos + 2) == "<" {
            self.pos += 2;
            self.skip_angles();
        }
        if self.text(self.pos) == "(" {
            let args = self.parse_paren_list(ast);
            Expr::Method {
                recv: Box::new(recv),
                name,
                args,
                line,
            }
        } else {
            Expr::Field {
                recv: Box::new(recv),
                name,
                line,
            }
        }
    }

    /// `( e, e, ... )` — the cursor must sit on the `(`.
    fn parse_paren_list(&mut self, ast: &mut Ast) -> Vec<Expr> {
        self.pos += 1; // `(`
        let mut args = Vec::new();
        while self.pos < self.toks.len() && self.burn() {
            match self.text(self.pos) {
                ")" => {
                    self.pos += 1;
                    return args;
                }
                "," => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    args.push(self.parse_expr(0, false, ast));
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            }
        }
        args
    }

    fn parse_prefix(&mut self, no_struct: bool, ast: &mut Ast) -> Expr {
        let line = self.line(self.pos);
        let t = match self.tok(self.pos) {
            Some(t) => t,
            None => {
                return Expr::Opaque {
                    children: Vec::new(),
                    line,
                }
            }
        };
        match (t.kind, t.text.as_str()) {
            (TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char, _)
            | (TokKind::Lifetime, _) => {
                let e = Expr::Lit {
                    kind: t.kind,
                    text: t.text.clone(),
                    line,
                };
                self.pos += 1;
                e
            }
            (TokKind::Punct, "-" | "!" | "*") => {
                self.pos += 1;
                let inner = self.parse_expr(25, no_struct, ast);
                Expr::Opaque {
                    children: vec![inner],
                    line,
                }
            }
            (TokKind::Punct, "&") => {
                self.pos += 1;
                if self.text(self.pos) == "&" {
                    self.pos += 1;
                }
                if self.text(self.pos) == "mut" {
                    self.pos += 1;
                }
                let inner = self.parse_expr(25, no_struct, ast);
                Expr::Opaque {
                    children: vec![inner],
                    line,
                }
            }
            (TokKind::Punct, "|") => self.parse_closure(ast),
            (TokKind::Punct, "{") => self.parse_block(ast).unwrap_or(Expr::Opaque {
                children: Vec::new(),
                line,
            }),
            (TokKind::Punct, "(") => {
                let items = self.parse_paren_list(ast);
                match items.len() {
                    1 => items.into_iter().next().unwrap_or(Expr::Opaque {
                        children: Vec::new(),
                        line,
                    }),
                    _ => Expr::Opaque {
                        children: items,
                        line,
                    },
                }
            }
            (TokKind::Punct, "[") => {
                self.pos += 1;
                let mut items = Vec::new();
                while self.pos < self.toks.len() && self.burn() {
                    match self.text(self.pos) {
                        "]" => {
                            self.pos += 1;
                            break;
                        }
                        "," | ";" => self.pos += 1,
                        _ => {
                            let before = self.pos;
                            items.push(self.parse_expr(0, false, ast));
                            if self.pos == before {
                                self.pos += 1;
                            }
                        }
                    }
                }
                Expr::Opaque {
                    children: items,
                    line,
                }
            }
            (TokKind::Punct, "." | "#") => {
                // Leading range (`..x`) or an attribute on an expression
                // (`#[allow] expr`): skip the introducer and keep going.
                let (op, n) = self.punct_run(self.pos);
                if op == ".." || op == "..=" {
                    self.pos += n;
                    let inner = if self.expr_starts_here() {
                        vec![self.parse_expr(6, no_struct, ast)]
                    } else {
                        Vec::new()
                    };
                    return Expr::Opaque {
                        children: inner,
                        line,
                    };
                }
                self.pos += 1;
                if self.text(self.pos) == "[" {
                    self.skip_balanced("[", "]");
                    return self.parse_prefix(no_struct, ast);
                }
                Expr::Opaque {
                    children: Vec::new(),
                    line,
                }
            }
            (TokKind::Ident, "return") => {
                self.pos += 1;
                let value = if self.expr_starts_here() {
                    Some(Box::new(self.parse_expr(0, no_struct, ast)))
                } else {
                    None
                };
                Expr::Return { value, line }
            }
            (TokKind::Ident, "break") => {
                self.pos += 1;
                let children = if self.expr_starts_here() {
                    vec![self.parse_expr(0, no_struct, ast)]
                } else {
                    Vec::new()
                };
                Expr::Opaque { children, line }
            }
            (TokKind::Ident, "continue") => {
                self.pos += 1;
                Expr::Opaque {
                    children: Vec::new(),
                    line,
                }
            }
            (TokKind::Ident, "match") => self.parse_match(ast),
            (TokKind::Ident, "if") => self.parse_if(ast),
            (TokKind::Ident, "while") => {
                self.pos += 1;
                let cond = self.parse_expr(0, true, ast);
                let body = self.parse_block(ast);
                let mut children = vec![cond];
                children.extend(body);
                Expr::Opaque { children, line }
            }
            (TokKind::Ident, "loop") => {
                self.pos += 1;
                let body = self.parse_block(ast);
                Expr::Opaque {
                    children: body.into_iter().collect(),
                    line,
                }
            }
            (TokKind::Ident, "for") => {
                self.pos += 1;
                // Skip the loop pattern up to `in`.
                let mut depth = 0i32;
                while self.pos < self.toks.len() && self.burn() {
                    match self.text(self.pos) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth <= 0 => break,
                        "{" if depth <= 0 => break, // malformed
                        _ => {}
                    }
                    self.pos += 1;
                }
                if self.text(self.pos) == "in" {
                    self.pos += 1;
                }
                let iter = self.parse_expr(0, true, ast);
                let body = self.parse_block(ast);
                let mut children = vec![iter];
                children.extend(body);
                Expr::Opaque { children, line }
            }
            (TokKind::Ident, "let") => {
                // `if let pat = expr` condition: skip the pattern, parse
                // the scrutinee.
                self.pos += 1;
                let mut depth = 0i32;
                while self.pos < self.toks.len() && self.burn() {
                    match self.text(self.pos) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "=" if depth <= 0 && self.punct_run(self.pos).0 == "=" => break,
                        "{" if depth <= 0 => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                if self.text(self.pos) == "=" {
                    self.pos += 1;
                }
                let scrut = self.parse_expr(4, true, ast);
                Expr::Opaque {
                    children: vec![scrut],
                    line,
                }
            }
            (TokKind::Ident, "move") => {
                self.pos += 1;
                if self.text(self.pos) == "|" {
                    self.parse_closure(ast)
                } else {
                    self.parse_prefix(no_struct, ast)
                }
            }
            (TokKind::Ident, "unsafe" | "async") => {
                self.pos += 1;
                self.parse_prefix(no_struct, ast)
            }
            (TokKind::Ident, _) => self.parse_path_expr(no_struct, ast),
            _ => {
                self.pos += 1;
                Expr::Opaque {
                    children: Vec::new(),
                    line,
                }
            }
        }
    }

    /// Would the current token plausibly begin an expression? Used to
    /// decide whether `return` / `break` / `..` carry a value.
    fn expr_starts_here(&self) -> bool {
        match self.tok(self.pos) {
            None => false,
            Some(t) => !matches!(
                (t.kind, t.text.as_str()),
                (TokKind::Punct, ";" | "," | ")" | "}" | "]") | (TokKind::Ident, "else" | "in")
            ),
        }
    }

    /// `|params| body` — the cursor sits on the first `|`.
    fn parse_closure(&mut self, ast: &mut Ast) -> Expr {
        let line = self.line(self.pos);
        self.pos += 1; // first `|`
                       // `||` lexes as two puncts: an immediately following `|` closes
                       // an empty parameter list.
        if self.text(self.pos) == "|" {
            self.pos += 1;
        } else {
            let mut depth = 0i32;
            while self.pos < self.toks.len() && self.burn() {
                match self.text(self.pos) {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "|" if depth <= 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        // Optional return type.
        if self.punct_run(self.pos).0 == "->" {
            self.pos += 2;
            self.skip_type();
        }
        let body = self.parse_expr(2, false, ast);
        Expr::Opaque {
            children: vec![body],
            line,
        }
    }

    fn parse_match(&mut self, ast: &mut Ast) -> Expr {
        let line = self.line(self.pos);
        self.pos += 1; // `match`
        let scrutinee = self.parse_expr(0, true, ast);
        if self.text(self.pos) != "{" {
            return Expr::Opaque {
                children: vec![scrutinee],
                line,
            };
        }
        self.pos += 1;
        let mut arms = Vec::new();
        while self.pos < self.toks.len() && self.burn() {
            match self.text(self.pos) {
                "}" => {
                    self.pos += 1;
                    break;
                }
                "," => {
                    self.pos += 1;
                }
                _ => {
                    let pat = self.parse_arm_pattern();
                    if self.punct_run(self.pos).0 == "=>" {
                        self.pos += 2;
                    }
                    let before = self.pos;
                    let body = self.parse_expr(2, false, ast);
                    if self.pos == before {
                        self.pos += 1;
                    }
                    arms.push(Arm { pat, body });
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    /// Collect one arm's pattern tokens (up to the `=>` at depth zero)
    /// into a structural [`Pattern`] summary.
    fn parse_arm_pattern(&mut self) -> Pattern {
        let line = self.line(self.pos);
        let start = self.pos;
        let mut depth = 0i32;
        let mut guard_at: Option<usize> = None;
        while self.pos < self.toks.len() && self.burn() {
            let (op, n) = self.punct_run(self.pos);
            match op.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break; // malformed arm; stop before the match's `}`
                    }
                    depth -= 1;
                }
                "=>" if depth == 0 => break,
                _ => {}
            }
            if depth == 0 && self.text(self.pos) == "if" && guard_at.is_none() {
                guard_at = Some(self.pos);
            }
            self.pos += if op.len() > 1 { n } else { 1 };
        }
        let pat_end = guard_at.unwrap_or(self.pos);
        let mut path_roots = Vec::new();
        let mut i = start;
        while i < pat_end {
            if self.is_ident(i)
                && self.text(i + 1) == ":"
                && self.text(i + 2) == ":"
                && self.is_ident(i + 3)
            {
                let root = self.text(i).to_string();
                if !path_roots.contains(&root) {
                    path_roots.push(root);
                }
                i += 3;
                continue;
            }
            i += 1;
        }
        let is_wildcard = pat_end == start + 1 && self.text(start) == "_";
        Pattern {
            is_wildcard,
            path_roots,
            has_guard: guard_at.is_some(),
            line,
        }
    }

    fn parse_if(&mut self, ast: &mut Ast) -> Expr {
        let line = self.line(self.pos);
        self.pos += 1; // `if`
        let cond = self.parse_expr(0, true, ast);
        let then = self.parse_block(ast);
        let mut children = vec![cond];
        children.extend(then);
        if self.text(self.pos) == "else" {
            self.pos += 1;
            if self.text(self.pos) == "if" {
                children.push(self.parse_if(ast));
            } else if let Some(b) = self.parse_block(ast) {
                children.push(b);
            }
        }
        Expr::Opaque { children, line }
    }

    /// Path expression: `a::b::C`, possibly a call, struct literal, or
    /// macro invocation.
    fn parse_path_expr(&mut self, no_struct: bool, ast: &mut Ast) -> Expr {
        let line = self.line(self.pos);
        let mut segs = vec![self.text(self.pos).to_string()];
        self.pos += 1;
        while self.punct_run(self.pos).0 == "::" && self.burn() {
            if self.text(self.pos + 2) == "<" {
                // Turbofish: skip the generic arguments.
                self.pos += 2;
                self.skip_angles();
            } else if self.is_ident(self.pos + 2) {
                segs.push(self.text(self.pos + 2).to_string());
                self.pos += 3;
            } else {
                self.pos += 2;
                break;
            }
        }
        // Macro invocation: `name!(...)` / `name![...]` / `name!{...}` —
        // parse the delimited body as a best-effort expression list so
        // identifier uses inside `vec![...]`/`format!(...)` stay visible.
        if self.text(self.pos) == "!"
            && matches!(self.text(self.pos + 1), "(" | "[" | "{")
            && self.punct_run(self.pos).0 != "!="
        {
            self.pos += 1;
            let children = match self.text(self.pos) {
                "(" => self.parse_paren_list(ast),
                _ => {
                    let (open, close) = if self.text(self.pos) == "[" {
                        ("[", "]")
                    } else {
                        ("{", "}")
                    };
                    self.skip_balanced(open, close);
                    Vec::new()
                }
            };
            return Expr::Opaque { children, line };
        }
        // Struct literal: `Path { field: ..., }` — only when the brace
        // contents look like fields, and never in scrutinee position.
        if self.text(self.pos) == "{" && !no_struct && self.looks_like_struct_body() {
            return self.parse_struct_body(segs, line, ast);
        }
        Expr::Path { segs, line }
    }

    fn looks_like_struct_body(&self) -> bool {
        // After `{`: `}` (empty), `ident:`/`ident,`/`ident}` (fields),
        // or `..` (functional update).
        if self.text(self.pos) != "{" {
            return false;
        }
        if self.text(self.pos + 1) == "}" {
            return true;
        }
        let (op, _) = self.punct_run(self.pos + 1);
        if op == ".." {
            return true;
        }
        self.is_ident(self.pos + 1)
            && (matches!(self.text(self.pos + 2), "," | "}")
                || (self.text(self.pos + 2) == ":" && self.text(self.pos + 3) != ":"))
    }

    fn parse_struct_body(&mut self, segs: Vec<String>, line: u32, ast: &mut Ast) -> Expr {
        self.pos += 1; // `{`
        let mut fields = Vec::new();
        let mut rest = None;
        while self.pos < self.toks.len() && self.burn() {
            let (op, n) = self.punct_run(self.pos);
            match op.as_str() {
                "}" => {
                    self.pos += 1;
                    break;
                }
                "," => self.pos += 1,
                ".." => {
                    self.pos += n;
                    rest = Some(Box::new(self.parse_expr(2, false, ast)));
                }
                _ if self.is_ident(self.pos) => {
                    let fline = self.line(self.pos);
                    let fname = self.text(self.pos).to_string();
                    self.pos += 1;
                    if self.text(self.pos) == ":" && self.text(self.pos + 1) != ":" {
                        self.pos += 1;
                        let value = self.parse_expr(2, false, ast);
                        fields.push((fname, value));
                    } else {
                        // Shorthand `Struct { field }` — the field is a
                        // use of the local with the same name.
                        let value = Expr::Path {
                            segs: vec![fname.clone()],
                            line: fline,
                        };
                        fields.push((fname, value));
                    }
                }
                _ => self.pos += 1,
            }
        }
        Expr::Struct {
            segs,
            fields,
            rest,
            line,
        }
    }

    /// Skip a balanced `<...>` group, starting on the `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() && self.burn() {
            match self.text(self.pos) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" | "{" => return, // malformed; bail
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skip a balanced delimiter group, starting on `open`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() && self.burn() {
            let t = self.text(self.pos);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth <= 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Consume the type tokens after `as` (idents, paths, references,
    /// balanced groups), stopping at anything that cannot be a type.
    fn skip_type(&mut self) {
        while self.pos < self.toks.len() && self.burn() {
            let t = match self.tok(self.pos) {
                Some(t) => t,
                None => return,
            };
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "dyn" | "mut" | "const") => self.pos += 1,
                (TokKind::Ident, _) => {
                    self.pos += 1;
                    if self.punct_run(self.pos).0 == "::" {
                        self.pos += 2;
                        continue;
                    }
                    if self.text(self.pos) == "<" {
                        self.skip_angles();
                    }
                    // A single type name (with optional path tail) is the
                    // common case; stop unless a path continues.
                    if self.punct_run(self.pos).0 != "::" {
                        return;
                    }
                }
                (TokKind::Punct, "&" | "*") => self.pos += 1,
                (TokKind::Punct, "(") => {
                    self.skip_balanced("(", ")");
                    return;
                }
                (TokKind::Punct, "[") => {
                    self.skip_balanced("[", "]");
                    return;
                }
                _ => return,
            }
        }
    }
}

fn is_compound(op: &str) -> bool {
    matches!(
        op,
        "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
    )
}

/// Binding power of a binary operator; 0 means "not a binary operator".
fn binary_bp(op: &str) -> u8 {
    match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => 3,
        ".." | "..=" => 5,
        "||" => 7,
        "&&" => 9,
        "==" | "!=" | "<" | ">" | "<=" | ">=" => 11,
        "|" => 13,
        "^" => 15,
        "&" => 17,
        "<<" | ">>" => 19,
        "+" | "-" => 21,
        "*" | "/" | "%" => 23,
        _ => 0,
    }
}
